package sched

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"autotune/internal/cloud"
)

// costExec returns an Exec whose task costs come from a fixed table.
func costExec(costs []float64) Exec {
	return func(ctx context.Context, task, attempt int) Attempt {
		return Attempt{Cost: costs[task], Payload: task}
	}
}

func collect(t *testing.T, p *Pool, ctx context.Context, n int, exec Exec) ([]Completion, float64, error) {
	t.Helper()
	var out []Completion
	elapsed, err := p.Run(ctx, n, exec, func(c Completion) { out = append(out, c) })
	return out, elapsed, err
}

func TestVirtualUniformBatch(t *testing.T) {
	p := New(Options{Workers: 2})
	costs := []float64{1, 1, 1, 1}
	got, elapsed, err := collect(t, p, context.Background(), 4, costExec(costs))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d completions, want 4", len(got))
	}
	// 4 unit tasks over 2 workers: two rounds of parallel pairs.
	if elapsed != 2 {
		t.Fatalf("elapsed = %v, want 2", elapsed)
	}
	seen := map[int]bool{}
	for _, c := range got {
		if seen[c.Task] {
			t.Fatalf("task %d delivered twice", c.Task)
		}
		seen[c.Task] = true
	}
}

func TestVirtualHedgeBeatsSlowHost(t *testing.T) {
	hosts := []cloud.HostProfile{{Mult: 1}, {Mult: 1}, {Mult: 10, Outlier: true}}
	p := New(Options{Workers: 3, Hosts: hosts, HedgeQuantile: 0.8, HedgeMinSamples: 2, HedgeWindow: 16})
	uniform := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	// Prime the duration window (no hedging yet possible on the very
	// first placements, and the threshold settles near the unit cost).
	if _, _, err := collect(t, p, context.Background(), 6, costExec(uniform(6))); err != nil {
		t.Fatalf("prime: %v", err)
	}
	got, elapsed, err := collect(t, p, context.Background(), 3, costExec(uniform(3)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d completions, want 3", len(got))
	}
	st := p.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want exactly one hedge and one hedge win", st)
	}
	// Without hedging the slow host pins the batch at 10 virtual
	// seconds; the duplicate launched at the threshold finishes at 2.
	if elapsed >= 10 {
		t.Fatalf("elapsed = %v, hedging should beat the 10s straggler", elapsed)
	}
	var hedged *Completion
	for i := range got {
		if got[i].Hedged {
			hedged = &got[i]
		}
	}
	if hedged == nil {
		t.Fatalf("no hedged completion in %+v", got)
	}
	if hedged.Attempt != 1 {
		t.Fatalf("hedged completion won attempt %d, want the hedge (1)", hedged.Attempt)
	}
	if hedged.Waste <= 0 {
		t.Fatalf("hedged completion waste = %v, want > 0 (cancelled primary)", hedged.Waste)
	}
}

func TestVirtualDeterministic(t *testing.T) {
	hosts := []cloud.HostProfile{{Mult: 1}, {Mult: 1.2}, {Mult: 8, Outlier: true}, {Mult: 1}}
	run := func() ([]Completion, float64) {
		p := New(Options{Workers: 4, Hosts: hosts, HedgeQuantile: 0.7, HedgeMinSamples: 4, HedgeWindow: 32})
		var all []Completion
		var total float64
		for batch := 0; batch < 5; batch++ {
			costs := make([]float64, 8)
			for i := range costs {
				costs[i] = 1 + float64((batch*8+i)%3)*0.25
			}
			got, elapsed, err := collect(t, p, context.Background(), 8, costExec(costs))
			if err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
			all = append(all, got...)
			total += elapsed
		}
		return all, total
	}
	a, ea := run()
	b, eb := run()
	if ea != eb {
		t.Fatalf("elapsed diverged: %v vs %v", ea, eb)
	}
	if len(a) != len(b) {
		t.Fatalf("completion counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		x.Result.Payload, y.Result.Payload = nil, nil
		if x != y {
			t.Fatalf("completion %d diverged:\n%+v\n%+v", i, x, y)
		}
	}
}

func TestVirtualPanicIsolated(t *testing.T) {
	p := New(Options{Workers: 2})
	exec := func(ctx context.Context, task, attempt int) Attempt {
		if task == 1 {
			panic("environment bug")
		}
		return Attempt{Cost: 1}
	}
	got, _, err := collect(t, p, context.Background(), 3, exec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d completions, want 3 (panic must not lose the task)", len(got))
	}
	var panicked int
	for _, c := range got {
		if c.Result.Err != nil {
			if !errors.Is(c.Result.Err, ErrPanic) {
				t.Fatalf("task %d error %v, want ErrPanic", c.Task, c.Result.Err)
			}
			panicked++
		}
	}
	if panicked != 1 {
		t.Fatalf("%d panicked completions, want 1", panicked)
	}
	if st := p.Stats(); st.Panics != 1 {
		t.Fatalf("stats.Panics = %d, want 1", st.Panics)
	}
	// The pool survives for the next batch.
	if _, _, err := collect(t, p, context.Background(), 2, costExec([]float64{1, 1})); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
}

type fakeGate struct {
	blocked map[int]bool
	records []string
}

func (g *fakeGate) AllowHost(host int) bool { return !g.blocked[host] }
func (g *fakeGate) RecordHost(host int, ok bool) {
	g.records = append(g.records, fmt.Sprintf("%d:%v", host, ok))
}

func TestVirtualGateDrainsQuarantinedHost(t *testing.T) {
	gate := &fakeGate{blocked: map[int]bool{1: true}}
	p := New(Options{Workers: 2, Hosts: []cloud.HostProfile{{Mult: 1}, {Mult: 1}}, Gate: gate})
	got, _, err := collect(t, p, context.Background(), 4, costExec([]float64{1, 1, 1, 1}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range got {
		if c.Host != 0 {
			t.Fatalf("task %d placed on quarantined host %d", c.Task, c.Host)
		}
	}
}

func TestVirtualGateFullQuarantineFallsBack(t *testing.T) {
	gate := &fakeGate{blocked: map[int]bool{0: true, 1: true}}
	p := New(Options{Workers: 2, Gate: gate})
	got, _, err := collect(t, p, context.Background(), 3, costExec([]float64{1, 1, 1}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d completions, want 3 (full quarantine must degrade, not stall)", len(got))
	}
}

func TestVirtualDrainOnCancel(t *testing.T) {
	var delivered []int
	p := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	exec := func(c context.Context, task, attempt int) Attempt {
		if task == 2 {
			cancel() // the kill arrives while task 2 is being evaluated
		}
		return Attempt{Cost: 1}
	}
	_, err := p.Run(ctx, 6, exec, func(c Completion) { delivered = append(delivered, c.Task) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Tasks 0..2 were evaluated before the cancellation was observed and
	// must be delivered; 3..5 were never started and must not be.
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(delivered) != 3 {
		t.Fatalf("delivered %v, want exactly tasks 0..2", delivered)
	}
	for _, id := range delivered {
		if !want[id] {
			t.Fatalf("delivered unstarted task %d", id)
		}
	}
}

func TestWallClockBasic(t *testing.T) {
	p := New(Options{Workers: 4, WallClock: true})
	var ran atomic.Int64
	exec := func(ctx context.Context, task, attempt int) Attempt {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return Attempt{Cost: 0.001, Payload: task}
	}
	got, elapsed, err := collect(t, p, context.Background(), 32, exec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 32 {
		t.Fatalf("got %d completions, want 32", len(got))
	}
	seen := map[int]bool{}
	for _, c := range got {
		if seen[c.Task] {
			t.Fatalf("task %d delivered twice", c.Task)
		}
		seen[c.Task] = true
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v, want > 0 on the wall clock", elapsed)
	}
}

func TestWallClockPanicWorkerSurvives(t *testing.T) {
	p := New(Options{Workers: 2, WallClock: true})
	exec := func(ctx context.Context, task, attempt int) Attempt {
		if task%2 == 0 {
			panic(fmt.Sprintf("task %d exploded", task))
		}
		return Attempt{Cost: 0.001}
	}
	got, _, err := collect(t, p, context.Background(), 8, exec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("got %d completions, want 8 — panics must not eat worker slots", len(got))
	}
	panics := 0
	for _, c := range got {
		if errors.Is(c.Result.Err, ErrPanic) {
			panics++
		}
	}
	if panics != 4 {
		t.Fatalf("%d panic completions, want 4", panics)
	}
}

func TestWallClockHedgeWins(t *testing.T) {
	p := New(Options{Workers: 2, WallClock: true, HedgeQuantile: 0.5, HedgeMinSamples: 4, HedgeWindow: 16})
	quick := func(ctx context.Context, task, attempt int) Attempt {
		time.Sleep(2 * time.Millisecond)
		return Attempt{Cost: 0.002}
	}
	if _, _, err := collect(t, p, context.Background(), 8, quick); err != nil {
		t.Fatalf("prime: %v", err)
	}
	// One task whose primary hangs until cancelled; the hedge returns
	// promptly, so the batch must finish far sooner than the hang.
	exec := func(ctx context.Context, task, attempt int) Attempt {
		if attempt == 0 {
			select {
			case <-ctx.Done():
				return Attempt{Err: ctx.Err()}
			case <-time.After(5 * time.Second):
				return Attempt{Cost: 5}
			}
		}
		time.Sleep(2 * time.Millisecond)
		return Attempt{Cost: 0.002}
	}
	got, elapsed, err := collect(t, p, context.Background(), 1, exec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 || got[0].Attempt != 1 || !got[0].Hedged {
		t.Fatalf("completion %+v, want the hedge (attempt 1) to win", got)
	}
	if elapsed > 2 {
		t.Fatalf("elapsed = %vs, hedge should finish long before the 5s hang", elapsed)
	}
	if st := p.Stats(); st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want one hedge win", st)
	}
}

func TestWallClockDrainOnCancel(t *testing.T) {
	p := New(Options{Workers: 2, WallClock: true})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	exec := func(c context.Context, task, attempt int) Attempt {
		started.Add(1)
		select {
		case <-c.Done():
			return Attempt{Err: c.Err()}
		case <-time.After(20 * time.Millisecond):
			return Attempt{Cost: 0.02}
		}
	}
	var delivered []int
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := p.Run(ctx, 16, exec, func(c Completion) { delivered = append(delivered, c.Task) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	seen := map[int]bool{}
	for _, id := range delivered {
		if seen[id] {
			t.Fatalf("task %d delivered twice during drain", id)
		}
		seen[id] = true
	}
	// Everything that started must be delivered; with 2 workers and a
	// 5ms kill, far fewer than 16 start.
	if int64(len(delivered)) != started.Load() {
		t.Fatalf("delivered %d of %d started attempts — drain dropped in-flight work",
			len(delivered), started.Load())
	}
}

func TestGuardPassesThrough(t *testing.T) {
	want := errors.New("boom")
	if err := Guard(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if err := Guard(func() error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	err := Guard(func() error { panic("kaboom") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
}
