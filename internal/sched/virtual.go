package sched

import (
	"container/heap"
	"context"
)

// The virtual clock is a discrete-event simulation. Every primary attempt
// is evaluated inline, in batch-index order, on the caller's goroutine;
// the attempt's reported cost — scaled by the speed multiplier of the
// host slot it lands on — becomes its duration on a simulated timeline.
// Hedge decisions, cancellations, and completion order all derive from
// that timeline, so two identically-seeded runs produce byte-identical
// schedules regardless of machine load. The price is that evaluation
// concurrency is simulated, not real, which is exactly right for model
// environments whose cost is an output, not a measurement.

type vAttempt struct {
	task, attempt, worker int
	start, end            float64
	res                   Attempt
	cancelled             bool
}

type vTask struct {
	done     bool
	hedged   bool
	attempts []*vAttempt
}

const (
	evComplete = iota // completions sort before hedge checks at equal times
	evHedge
)

type vEvent struct {
	at      float64
	kind    int
	task    int
	attempt *vAttempt // completion events only
}

type vQueue []*vEvent

func (q vQueue) Len() int { return len(q) }
func (q vQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.task != b.task {
		return a.task < b.task
	}
	an, bn := 0, 0
	if a.attempt != nil {
		an = a.attempt.attempt
	}
	if b.attempt != nil {
		bn = b.attempt.attempt
	}
	return an < bn
}
func (q vQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *vQueue) Push(x any)   { *q = append(*q, x.(*vEvent)) }
func (q *vQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type vsim struct {
	p      *Pool
	freeAt []float64
	tasks  []*vTask
	events vQueue
}

// place picks the worker for an attempt wanted at time t: the
// gate-allowed worker (excluding exclude, -1 for none) that frees
// earliest, ties to the lowest index. If quarantine blocks every
// candidate the gate is ignored — a fully-quarantined fleet must degrade,
// not deadlock.
func (v *vsim) place(t float64, exclude int) (int, float64) {
	pick := func(gated, excluded bool) (int, float64) {
		best, bestStart := -1, 0.0
		for w := range v.freeAt {
			if excluded && w == exclude {
				continue
			}
			if gated && !v.p.allowHost(w) {
				continue
			}
			s := v.freeAt[w]
			if t > s {
				s = t
			}
			if best == -1 || s < bestStart {
				best, bestStart = w, s
			}
		}
		return best, bestStart
	}
	if w, s := pick(true, true); w != -1 {
		return w, s
	}
	if w, s := pick(false, true); w != -1 {
		return w, s
	}
	w, s := pick(false, false)
	return w, s
}

// startAttempt evaluates one attempt inline and books it on the timeline.
func (v *vsim) startAttempt(ctx context.Context, exec Exec, task, attemptNo int, t float64, exclude int) {
	res := runAttempt(ctx, exec, task, attemptNo)
	w, start := v.place(t, exclude)
	dur := res.Cost
	if dur < 0 {
		dur = 0
	}
	dur *= v.p.hostMult(w)
	at := &vAttempt{task: task, attempt: attemptNo, worker: w, start: start, end: start + dur, res: res}
	v.tasks[task].attempts = append(v.tasks[task].attempts, at)
	v.freeAt[w] = at.end
	heap.Push(&v.events, &vEvent{at: at.end, kind: evComplete, task: task, attempt: at})
	if attemptNo == 0 {
		// Hedge check: the threshold is computed from durations observed
		// before this batch, so the decision is independent of the order
		// completions are absorbed in below.
		if thr, ok := v.p.threshold(); ok && dur > thr {
			heap.Push(&v.events, &vEvent{at: start + thr, kind: evHedge, task: task})
		}
	}
}

func (p *Pool) runVirtual(ctx context.Context, n int, exec Exec, deliver func(Completion)) (float64, error) {
	v := &vsim{p: p, freeAt: make([]float64, p.opts.Workers), tasks: make([]*vTask, n)}
	for i := range v.tasks {
		v.tasks[i] = &vTask{}
	}
	// Graceful drain: a cancellation observed here stops new primaries
	// (they are re-run after Resume); attempts already evaluated still
	// flow through the event loop and are delivered.
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		v.startAttempt(ctx, exec, i, 0, 0, -1)
	}
	elapsed := 0.0
	for v.events.Len() > 0 {
		e := heap.Pop(&v.events).(*vEvent)
		switch e.kind {
		case evHedge:
			t := v.tasks[e.task]
			if t.done || t.hedged || ctx.Err() != nil {
				continue
			}
			t.hedged = true
			p.countHedge()
			exclude := -1
			if p.opts.Workers > 1 && len(t.attempts) > 0 {
				exclude = t.attempts[0].worker
			}
			v.startAttempt(ctx, exec, e.task, 1, e.at, exclude)
		case evComplete:
			at := e.attempt
			if at.cancelled {
				continue
			}
			t := v.tasks[at.task]
			t.done = true
			var waste float64
			cancelled := 0
			for _, other := range t.attempts {
				if other == at || other.cancelled {
					continue
				}
				other.cancelled = true
				cancelled++
				w := e.at - other.start
				if w < 0 {
					w = 0
				}
				waste += w
				// Free the loser's worker early, but only if it is still
				// the last booking on that slot.
				if v.freeAt[other.worker] == other.end && e.at < other.end {
					v.freeAt[other.worker] = e.at
				}
			}
			p.recordHost(at.worker, at.res.Err == nil)
			if at.res.Err == nil {
				p.observeDuration(at.end - at.start)
			}
			if e.at > elapsed {
				elapsed = e.at
			}
			c := Completion{
				Task:    at.task,
				Attempt: at.attempt,
				Host:    p.host(at.worker),
				Hedged:  t.hedged,
				Cost:    at.end - at.start,
				Waste:   waste,
				Start:   at.start,
				End:     at.end,
				Result:  at.res,
			}
			p.countWin(c, cancelled)
			if deliver != nil {
				deliver(c)
			}
		}
	}
	return elapsed, ctx.Err()
}
