package sched

import (
	"context"
	"sync"
	"time"
)

// The wall clock runs real worker goroutines: one unbuffered channel per
// worker, a single dispatcher goroutine (the Run caller) that owns all
// scheduling state, and a shared completion channel. Hedge timers are
// real timers, cancellation is real context cancellation, and elapsed
// time is measured. Used by environments that do real work, where the
// virtual clock's inline evaluation would serialize it.

type wallAttempt struct {
	task, attempt, worker int
	ctx                   context.Context
	cancel                context.CancelFunc
	started               time.Time
}

type wallResult struct {
	at      *wallAttempt
	res     Attempt
	elapsed float64 // measured seconds the attempt held its worker
}

type wallTask struct {
	done     bool
	hedged   bool
	started  bool
	attempts []*wallAttempt
	timer    *time.Timer
}

type workItem struct{ task, attempt int }

func (p *Pool) runWall(ctx context.Context, n int, exec Exec, deliver func(Completion)) (float64, error) {
	began := time.Now()
	workers := p.opts.Workers
	workc := make([]chan *wallAttempt, workers)
	resc := make(chan wallResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		workc[w] = make(chan *wallAttempt)
		wg.Add(1)
		in := workc[w]
		//autolint:ignore nakedgo pool worker: runAttempt recovers task panics, so the loop body cannot panic
		go func() {
			defer wg.Done()
			for at := range in {
				t0 := time.Now()
				res := runAttempt(at.ctx, exec, at.task, at.attempt)
				resc <- wallResult{at: at, res: res, elapsed: time.Since(t0).Seconds()}
			}
		}()
	}

	tasks := make([]*wallTask, n)
	pending := make([]workItem, 0, n)
	for i := range tasks {
		tasks[i] = &wallTask{}
		pending = append(pending, workItem{task: i})
	}
	idle := make([]bool, workers)
	for w := range idle {
		idle[w] = true
	}
	hedgec := make(chan int, n)
	inflight := 0
	remaining := n
	donec := ctx.Done()
	draining := false
	elapsed := 0.0

	// pickWorker returns the lowest-index idle, gate-allowed worker other
	// than exclude. When quarantine blocks every idle worker and nothing
	// is in flight, waiting cannot help — fall back to any idle worker so
	// the batch cannot stall.
	pickWorker := func(exclude int) (int, bool) {
		fallback := -1
		for w := 0; w < workers; w++ {
			if !idle[w] || w == exclude {
				continue
			}
			if p.allowHost(w) {
				return w, true
			}
			if fallback == -1 {
				fallback = w
			}
		}
		if fallback != -1 && inflight == 0 {
			return fallback, true
		}
		if exclude >= 0 && exclude < workers && idle[exclude] && inflight == 0 {
			return exclude, true
		}
		return -1, false
	}

	dispatch := func() {
		for len(pending) > 0 {
			item := pending[0]
			t := tasks[item.task]
			if t.done {
				pending = pending[1:]
				continue
			}
			exclude := -1
			if item.attempt > 0 && workers > 1 && len(t.attempts) > 0 {
				exclude = t.attempts[0].worker
			}
			w, ok := pickWorker(exclude)
			if !ok {
				return
			}
			pending = pending[1:]
			actx, cancel := context.WithCancel(ctx)
			at := &wallAttempt{task: item.task, attempt: item.attempt, worker: w,
				ctx: actx, cancel: cancel, started: time.Now()}
			t.attempts = append(t.attempts, at)
			t.started = true
			idle[w] = false
			inflight++
			if item.attempt == 0 && !draining {
				if thr, ok := p.threshold(); ok {
					task := item.task
					t.timer = time.AfterFunc(time.Duration(thr*float64(time.Second)), func() {
						select {
						case hedgec <- task:
						default:
						}
					})
				}
			}
			workc[w] <- at
		}
	}

	dispatch()
	for remaining > 0 || inflight > 0 {
		select {
		case r := <-resc:
			inflight--
			idle[r.at.worker] = true
			r.at.cancel()
			t := tasks[r.at.task]
			if t.done {
				// Losing attempt straggling home after cancellation; its
				// waste was charged when the winner was delivered.
				dispatch()
				continue
			}
			t.done = true
			if t.timer != nil {
				t.timer.Stop()
			}
			var waste float64
			cancelled := 0
			for _, other := range t.attempts {
				if other == r.at {
					continue
				}
				// Still in flight (had it finished, t.done would be set);
				// cancel it and charge the time it has burned so far.
				other.cancel()
				cancelled++
				waste += time.Since(other.started).Seconds()
			}
			p.recordHost(r.at.worker, r.res.Err == nil)
			if r.res.Err == nil {
				p.observeDuration(r.elapsed)
			}
			end := time.Since(began).Seconds()
			if end > elapsed {
				elapsed = end
			}
			remaining--
			c := Completion{
				Task:    r.at.task,
				Attempt: r.at.attempt,
				Host:    p.host(r.at.worker),
				Hedged:  t.hedged,
				Cost:    r.res.Cost,
				Waste:   waste,
				Start:   end - r.elapsed,
				End:     end,
				Result:  r.res,
			}
			p.countWin(c, cancelled)
			if deliver != nil {
				deliver(c)
			}
			dispatch()
		case taskID := <-hedgec:
			t := tasks[taskID]
			if t.done || t.hedged || draining {
				continue
			}
			t.hedged = true
			p.countHedge()
			pending = append(pending, workItem{task: taskID, attempt: 1})
			dispatch()
		case <-donec:
			donec = nil
			draining = true
			// Drop unstarted tasks (the returned error reports the cut);
			// started attempts keep draining and are delivered above.
			for _, item := range pending {
				if item.attempt == 0 && !tasks[item.task].started {
					remaining--
				}
			}
			pending = nil
		}
	}
	for _, c := range workc {
		close(c)
	}
	wg.Wait()
	for _, t := range tasks {
		if t.timer != nil {
			t.timer.Stop()
		}
	}
	return elapsed, ctx.Err()
}
