package sched

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrPanic marks a task that panicked and was recovered at the scheduler
// boundary. The wrapped error carries the panic value and the goroutine
// stack at the point of the panic. Callers distinguish "the environment
// crashed the benchmark" (its own error types) from "the environment has
// a bug" (errors.Is(err, ErrPanic)); both are survivable.
var ErrPanic = errors.New("sched: task panicked")

// Guard runs fn and converts a panic into an error wrapping ErrPanic,
// annotated with the panic value and stack. It is the single recovery
// point used at every boundary where third-party code runs on a
// scheduler-owned goroutine: trial environments, agent Apply/Measure
// hooks, and pool workers. A worker that hits a panicking task keeps its
// slot; only the task fails.
func Guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v\n%s", ErrPanic, r, debug.Stack())
		}
	}()
	return fn()
}
