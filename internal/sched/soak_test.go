package sched_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"autotune/internal/cloud"
	"autotune/internal/resilience"
	"autotune/internal/sched"
	"autotune/internal/space"
	"autotune/internal/trial"
)

// TestSoakWallClockFaultInjection drives the real (wall-clock) pool
// through resilience.Injector's fault battery — transients, hangs,
// stragglers, flaky hosts — with a live Breaker as the placement gate,
// and asserts the exactly-once delivery contract: every task completes
// exactly once, in nondecreasing timeline order, with the stats
// consistent. Run under -race this doubles as the concurrency soak for
// the worker pool and the breaker.
func TestSoakWallClockFaultInjection(t *testing.T) {
	sp := space.MustNew(space.Float("x", 0, 1))
	inner := &trial.FuncEnv{Sp: sp, F: func(c space.Config) float64 { return c.Float("x") }}
	hosts := []cloud.HostProfile{
		{Mult: 1}, {Mult: 1},
		{Mult: 1, Flaky: true, FailRate: 0.3},
		{Mult: 4, Outlier: true},
		{Mult: 1}, {Mult: 1},
	}
	br := resilience.NewBreaker()
	inj := resilience.NewInjector(inner, resilience.InjectorOptions{
		TransientProb: 0.15,
		HangProb:      0.05,
		HangFor:       2 * time.Millisecond,
		StragglerProb: 0.1,
		Hosts:         hosts,
		Breaker:       br,
		Seed:          42,
	})
	pool := sched.New(sched.Options{
		Workers:         8,
		Hosts:           hosts,
		Gate:            br,
		HedgeQuantile:   0.9,
		HedgeMinSamples: 8,
		WallClock:       true,
	})

	const n = 200
	rng := rand.New(rand.NewSource(1))
	cfgs := make([]space.Config, n)
	for i := range cfgs {
		cfgs[i] = sp.Sample(rng)
	}
	exec := func(ctx context.Context, task, attempt int) sched.Attempt {
		res, err := inj.Run(ctx, cfgs[task], 1)
		return sched.Attempt{Cost: res.CostSeconds, Err: err, Payload: task}
	}

	counts := make([]int, n)
	var order []float64
	elapsed, err := pool.Run(context.Background(), n, exec, func(c sched.Completion) {
		counts[c.Task]++
		order = append(order, c.End)
		if got, ok := c.Result.Payload.(int); ok && got != c.Task {
			t.Errorf("task %d delivered payload of task %d", c.Task, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	for task, got := range counts {
		if got != 1 {
			t.Fatalf("task %d delivered %d times, want exactly once", task, got)
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("completion %d delivered out of timeline order: %v after %v", i, order[i], order[i-1])
		}
	}
	stats := pool.Stats()
	if stats.Tasks != n {
		t.Fatalf("stats.Tasks = %d, want %d", stats.Tasks, n)
	}
	if stats.HedgeWins > stats.Hedges {
		t.Fatalf("hedge wins %d exceed hedges launched %d", stats.HedgeWins, stats.Hedges)
	}
	if istats := inj.Stats(); istats.Attempts < n {
		t.Fatalf("injector saw %d attempts, want >= %d", istats.Attempts, n)
	}
}

// TestSoakWallClockDrainUnderFaults cancels mid-flight and checks the
// drain contract under fault injection: whatever started is delivered
// exactly once, nothing is delivered twice, and the pool reports the
// cancellation.
func TestSoakWallClockDrainUnderFaults(t *testing.T) {
	sp := space.MustNew(space.Float("x", 0, 1))
	inner := &trial.FuncEnv{Sp: sp, F: func(c space.Config) float64 { return c.Float("x") }}
	inj := resilience.NewInjector(inner, resilience.InjectorOptions{
		TransientProb: 0.2,
		HangProb:      0.1,
		HangFor:       2 * time.Millisecond,
		Seed:          7,
	})
	pool := sched.New(sched.Options{Workers: 4, WallClock: true})

	const n = 64
	rng := rand.New(rand.NewSource(2))
	cfgs := make([]space.Config, n)
	for i := range cfgs {
		cfgs[i] = sp.Sample(rng)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	exec := func(actx context.Context, task, attempt int) sched.Attempt {
		if task == 20 {
			cancel()
		}
		res, err := inj.Run(actx, cfgs[task], 1)
		return sched.Attempt{Cost: res.CostSeconds, Err: err}
	}
	counts := make([]int, n)
	_, err := pool.Run(ctx, n, exec, func(c sched.Completion) {
		counts[c.Task]++
	})
	if err == nil {
		t.Fatal("expected the context error after drain")
	}
	delivered := 0
	for task, got := range counts {
		if got > 1 {
			t.Fatalf("task %d delivered %d times", task, got)
		}
		delivered += got
	}
	if delivered == 0 || delivered > n {
		t.Fatalf("delivered = %d of %d", delivered, n)
	}
	if stats := pool.Stats(); stats.Tasks != delivered {
		t.Fatalf("stats.Tasks = %d, deliveries = %d", stats.Tasks, delivered)
	}
}
