// Package noise implements the measurement-stabilization strategies from
// tutorial slides 69-71 for tuning on noisy clouds: replicated measurement
// with aggregation policies, duet benchmarking (paired baseline/trial runs
// on the same machine, scored as a relative difference), and a TUNA-style
// evaluator — progressive replication across machines with MAD outlier
// rejection — that registers stable scores with the optimizer.
package noise

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"autotune/internal/space"
	"autotune/internal/stats"
)

// Sampler measures a configuration once on a given replica (machine). The
// same replica index maps to the same machine across calls, so paired
// designs can hold machine noise constant.
type Sampler interface {
	Sample(cfg space.Config, replica int) float64
	// Replicas returns how many distinct replicas are available.
	Replicas() int
}

// ErrNoReplicas is returned when a sampler exposes no replicas.
var ErrNoReplicas = errors.New("noise: sampler has no replicas")

// Policy selects how repeated measurements aggregate to one score.
type Policy int

// Aggregation policies.
const (
	PolicyMean Policy = iota
	PolicyMedian
	PolicyP95
	PolicyMin
)

// Aggregate reduces samples according to the policy.
func Aggregate(p Policy, samples []float64) float64 {
	switch p {
	case PolicyMedian:
		return stats.Median(samples)
	case PolicyP95:
		return stats.Percentile(samples, 95)
	case PolicyMin:
		return stats.Min(samples)
	default:
		return stats.Mean(samples)
	}
}

// Repeated measures cfg n times on round-robin replicas and aggregates —
// the naive "run N times, take the average" strategy.
func Repeated(s Sampler, cfg space.Config, n int, p Policy) (float64, error) {
	if s.Replicas() == 0 {
		return 0, ErrNoReplicas
	}
	if n < 1 {
		n = 1
	}
	samples := make([]float64, n)
	for i := 0; i < n; i++ {
		samples[i] = s.Sample(cfg, i%s.Replicas())
	}
	return Aggregate(p, samples), nil
}

// Duet implements duet benchmarking (Bulej et al., ICPE 2020): baseline and
// trial run back to back on the same replica, so machine-level noise
// cancels in the relative difference. The returned score is the mean of
// (trial - baseline) / baseline over `pairs` replica pairs — negative means
// the trial config is faster than baseline.
func Duet(s Sampler, baseline, trial space.Config, pairs int) (float64, error) {
	if s.Replicas() == 0 {
		return 0, ErrNoReplicas
	}
	if pairs < 1 {
		pairs = 1
	}
	diffs := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		rep := i % s.Replicas()
		b := s.Sample(baseline, rep)
		t := s.Sample(trial, rep)
		if b == 0 {
			continue
		}
		diffs = append(diffs, (t-b)/math.Abs(b))
	}
	if len(diffs) == 0 {
		return 0, fmt.Errorf("noise: duet produced no valid pairs")
	}
	return stats.Mean(diffs), nil
}

// TUNA evaluates configurations with progressive replication and outlier
// rejection (Eurosys 2025): a first cheap measurement screens clearly bad
// configurations; promising ones are re-measured on additional machines;
// samples farther than OutlierK MADs from the median are discarded; the
// stable score is the median of survivors, expressed relative to a
// continuously re-measured baseline.
type TUNA struct {
	// Sampler provides machine-indexed measurements.
	Sampler Sampler
	// Baseline is the reference configuration (typically the default).
	Baseline space.Config
	// MaxReplicas bounds replication per evaluation (default 5).
	MaxReplicas int
	// ScreenFactor: a config whose first relative score exceeds the
	// incumbent's stable score by this multiplicative margin is rejected
	// after one measurement (default 1.5).
	ScreenFactor float64
	// OutlierK is the MAD multiple beyond which samples are discarded
	// (default 3).
	OutlierK float64

	incumbent float64
	hasIncum  bool
}

// NewTUNA returns a TUNA evaluator with defaults.
func NewTUNA(s Sampler, baseline space.Config) *TUNA {
	return &TUNA{
		Sampler:      s,
		Baseline:     baseline,
		MaxReplicas:  5,
		ScreenFactor: 1.5,
		OutlierK:     3,
	}
}

// Score returns a stable relative score for cfg (negative = better than
// baseline), and the number of raw samples spent.
func (t *TUNA) Score(cfg space.Config) (float64, int, error) {
	if t.Sampler.Replicas() == 0 {
		return 0, 0, ErrNoReplicas
	}
	maxRep := t.MaxReplicas
	if maxRep < 1 {
		maxRep = 1
	}
	if maxRep > t.Sampler.Replicas() {
		maxRep = t.Sampler.Replicas()
	}
	spent := 0
	var rels []float64
	for rep := 0; rep < maxRep; rep++ {
		b := t.Sampler.Sample(t.Baseline, rep)
		v := t.Sampler.Sample(cfg, rep)
		spent += 2
		if b == 0 {
			continue
		}
		rels = append(rels, (v-b)/math.Abs(b))
		// Screening after the first sample: clearly-bad configs stop here.
		if rep == 0 && t.hasIncum {
			margin := t.ScreenFactor * math.Max(0.05, math.Abs(t.incumbent))
			if rels[0] > t.incumbent+margin {
				return rels[0], spent, nil
			}
		}
	}
	if len(rels) == 0 {
		return 0, spent, fmt.Errorf("noise: no valid samples")
	}
	stable := t.stableScore(rels)
	if !t.hasIncum || stable < t.incumbent {
		t.incumbent = stable
		t.hasIncum = true
	}
	return stable, spent, nil
}

// stableScore rejects MAD outliers then returns the median.
func (t *TUNA) stableScore(rels []float64) float64 {
	med := stats.Median(rels)
	mad := stats.MAD(rels)
	if mad == 0 || math.IsNaN(mad) {
		return med
	}
	var kept []float64
	k := t.OutlierK
	if k <= 0 {
		k = 3
	}
	for _, r := range rels {
		if math.Abs(r-med) <= k*mad {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		return med
	}
	return stats.Median(kept)
}

// SortedByStability returns replica indices ordered by the spread (MAD) of
// probe measurements on each, most stable first — the "measure current
// resource performance with microbenchmarks" idea from slide 70.
func SortedByStability(s Sampler, probe space.Config, perReplica int) []int {
	n := s.Replicas()
	spread := make([]float64, n)
	for r := 0; r < n; r++ {
		samples := make([]float64, perReplica)
		for i := range samples {
			samples[i] = s.Sample(probe, r)
		}
		spread[r] = stats.MAD(samples)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return spread[idx[a]] < spread[idx[b]] })
	return idx
}
