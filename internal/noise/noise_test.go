package noise

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"autotune/internal/space"
)

// fakeSampler models a noisy fleet: true latency depends on cfg["x"], each
// replica has a fixed speed multiplier, and every sample has measurement
// noise. Replica 0 is an outlier machine (2x slow).
type fakeSampler struct {
	rng   *rand.Rand
	mults []float64
	noise float64
}

func newFakeSampler(replicas int, noise float64, seed int64) *fakeSampler {
	rng := rand.New(rand.NewSource(seed))
	mults := make([]float64, replicas)
	for i := range mults {
		mults[i] = 0.9 + 0.2*rng.Float64()
	}
	if replicas > 0 {
		mults[0] = 2.0 // outlier machine
	}
	return &fakeSampler{rng: rng, mults: mults, noise: noise}
}

func trueLatency(cfg space.Config) float64 {
	x := cfg.Float("x")
	return 1 + (x-0.7)*(x-0.7)
}

func (f *fakeSampler) Sample(cfg space.Config, replica int) float64 {
	return trueLatency(cfg) * f.mults[replica] * (1 + f.noise*f.rng.NormFloat64())
}

func (f *fakeSampler) Replicas() int { return len(f.mults) }

func noiseSpace() *space.Space { return space.MustNew(space.Float("x", 0, 1)) }

func TestAggregatePolicies(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 100}
	if Aggregate(PolicyMean, samples) != 22 {
		t.Fatal("mean")
	}
	if Aggregate(PolicyMedian, samples) != 3 {
		t.Fatal("median")
	}
	if Aggregate(PolicyMin, samples) != 1 {
		t.Fatal("min")
	}
	if p := Aggregate(PolicyP95, samples); p < 4 || p > 100 {
		t.Fatalf("p95 = %v", p)
	}
}

func TestRepeated(t *testing.T) {
	s := newFakeSampler(4, 0.01, 1)
	cfg := noiseSpace().Default()
	v, err := Repeated(s, cfg, 8, PolicyMedian)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("v = %v", v)
	}
	// n < 1 coerces to 1.
	if _, err := Repeated(s, cfg, 0, PolicyMean); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedNoReplicas(t *testing.T) {
	s := &fakeSampler{}
	if _, err := Repeated(s, noiseSpace().Default(), 3, PolicyMean); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuetCancelsMachineNoise(t *testing.T) {
	// Machines differ 2x, but duet's paired relative difference should
	// recover the true config effect regardless.
	s := newFakeSampler(6, 0.02, 2)
	sp := noiseSpace()
	baseline := space.Config{"x": 0.0} // true latency 1.49
	good := space.Config{"x": 0.7}     // true latency 1.0
	rel, err := Duet(s, baseline, good, 6)
	if err != nil {
		t.Fatal(err)
	}
	trueRel := (trueLatency(good) - trueLatency(baseline)) / trueLatency(baseline)
	if math.Abs(rel-trueRel) > 0.05 {
		t.Fatalf("duet rel = %v, true %v", rel, trueRel)
	}
	_ = sp
}

func TestDuetBeatsNaiveUnderMachineVariance(t *testing.T) {
	// Estimate the improvement of good over baseline via (a) naive
	// single-replica absolute scores on different machines, (b) duet.
	// Duet's error should be smaller on average.
	var duetErr, naiveErr float64
	trials := 20
	baseline := space.Config{"x": 0.0}
	good := space.Config{"x": 0.7}
	trueRel := (trueLatency(good) - trueLatency(baseline)) / trueLatency(baseline)
	for i := 0; i < trials; i++ {
		s := newFakeSampler(4, 0.02, int64(100+i))
		rel, err := Duet(s, baseline, good, 2)
		if err != nil {
			t.Fatal(err)
		}
		duetErr += math.Abs(rel - trueRel)
		// Naive: baseline on one machine, trial on another.
		b := s.Sample(baseline, 0)
		v := s.Sample(good, 1)
		naiveErr += math.Abs((v-b)/b - trueRel)
	}
	if duetErr >= naiveErr {
		t.Fatalf("duet error %v should beat naive %v", duetErr/20, naiveErr/20)
	}
}

func TestTUNAScoreIdentifiesGoodConfig(t *testing.T) {
	s := newFakeSampler(6, 0.05, 3)
	sp := noiseSpace()
	tuna := NewTUNA(s, space.Config{"x": 0.0})
	goodScore, spent, err := tuna.Score(space.Config{"x": 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if spent <= 0 {
		t.Fatal("no samples spent")
	}
	if goodScore >= 0 {
		t.Fatalf("good config score = %v, want negative (better than baseline)", goodScore)
	}
	badScore, _, err := tuna.Score(space.Config{"x": 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if !(goodScore < badScore) {
		t.Fatalf("good %v should beat bad %v", goodScore, badScore)
	}
	_ = sp
}

func TestTUNAScreensBadConfigsEarly(t *testing.T) {
	s := newFakeSampler(6, 0.02, 4)
	tuna := NewTUNA(s, space.Config{"x": 0.7})
	// Establish a good incumbent first.
	if _, _, err := tuna.Score(space.Config{"x": 0.69}); err != nil {
		t.Fatal(err)
	}
	// A clearly terrible config should stop after the first replica pair.
	_, spent, err := tuna.Score(space.Config{"x": 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if spent != 2 {
		t.Fatalf("spent = %d samples, want early abort at 2", spent)
	}
}

func TestTUNANoReplicas(t *testing.T) {
	tuna := NewTUNA(&fakeSampler{}, noiseSpace().Default())
	if _, _, err := tuna.Score(noiseSpace().Default()); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v", err)
	}
}

func TestSortedByStability(t *testing.T) {
	// Build a sampler where replica 2 is very noisy.
	rng := rand.New(rand.NewSource(5))
	s := &unstableSampler{rng: rng, noisy: 2, n: 4}
	order := SortedByStability(s, noiseSpace().Default(), 12)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	if order[len(order)-1] != 2 {
		t.Fatalf("noisiest replica should sort last: %v", order)
	}
}

type unstableSampler struct {
	rng   *rand.Rand
	noisy int
	n     int
}

func (u *unstableSampler) Sample(cfg space.Config, replica int) float64 {
	noise := 0.01
	if replica == u.noisy {
		noise = 0.5
	}
	return 1 + noise*u.rng.NormFloat64()
}

func (u *unstableSampler) Replicas() int { return u.n }
