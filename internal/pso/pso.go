// Package pso implements global-best particle swarm optimization (Gad 2022)
// over the unit-cube encoding of a configuration space, with linearly
// decaying inertia and velocity clamping. Like CMA-ES it buffers one
// swarm iteration at a time to fit the sequential Suggest/Observe protocol.
package pso

import (
	"math"
	"math/rand"

	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// Options configures the swarm.
type Options struct {
	// Particles is the swarm size (default 20).
	Particles int
	// InertiaStart/InertiaEnd define the linear inertia decay schedule
	// (defaults 0.9 → 0.4 over DecayIters iterations).
	InertiaStart, InertiaEnd float64
	// DecayIters is the inertia decay horizon in iterations (default 50).
	DecayIters int
	// Cognitive and Social are the acceleration coefficients
	// (defaults 1.49 each, the standard constricted values).
	Cognitive, Social float64
	// VMax clamps per-dimension velocity in unit-cube units (default 0.25).
	VMax float64
}

func (o Options) withDefaults() Options {
	if o.Particles <= 0 {
		o.Particles = 20
	}
	if o.InertiaStart <= 0 {
		o.InertiaStart = 0.9
	}
	if o.InertiaEnd <= 0 {
		o.InertiaEnd = 0.4
	}
	if o.DecayIters <= 0 {
		o.DecayIters = 50
	}
	if o.Cognitive <= 0 {
		o.Cognitive = 1.49
	}
	if o.Social <= 0 {
		o.Social = 1.49
	}
	if o.VMax <= 0 {
		o.VMax = 0.25
	}
	return o
}

type particle struct {
	pos, vel []float64
	bestPos  []float64
	bestVal  float64
	key      string // key of the config awaiting observation; "" when idle
}

// PSO implements optimizer.Optimizer and optimizer.BatchSuggester.
type PSO struct {
	optimizer.Recorder
	space *space.Space
	rng   *rand.Rand
	opts  Options

	particles []*particle
	gBestPos  []float64
	gBestVal  float64
	iter      int
	nextIdx   int
	observedN int
}

// New returns a PSO optimizer with default options.
func New(s *space.Space, rng *rand.Rand) *PSO { return NewWith(s, rng, Options{}) }

// NewWith returns a PSO optimizer with explicit options.
func NewWith(s *space.Space, rng *rand.Rand, opts Options) *PSO {
	opts = opts.withDefaults()
	p := &PSO{space: s, rng: rng, opts: opts, gBestVal: math.Inf(1)}
	d := s.Dim()
	for i := 0; i < opts.Particles; i++ {
		pos := make([]float64, d)
		vel := make([]float64, d)
		for j := range pos {
			pos[j] = rng.Float64()
			vel[j] = (rng.Float64()*2 - 1) * opts.VMax
		}
		if i == 0 {
			pos = s.Encode(s.Default()) // seed one particle at the default
		}
		p.particles = append(p.particles, &particle{
			pos: pos, vel: vel,
			bestPos: append([]float64(nil), pos...),
			bestVal: math.Inf(1),
		})
	}
	return p
}

// Name implements optimizer.Optimizer.
func (p *PSO) Name() string { return "pso" }

// Iteration returns the number of completed swarm iterations.
func (p *PSO) Iteration() int { return p.iter }

// Suggest implements optimizer.Optimizer: it hands out the current position
// of the next particle in the swarm.
func (p *PSO) Suggest() (space.Config, error) {
	pt := p.particles[p.nextIdx%len(p.particles)]
	p.nextIdx++
	cfg := p.space.Decode(pt.pos)
	pt.key = cfg.Key()
	return cfg, nil
}

// SuggestN implements optimizer.BatchSuggester.
func (p *PSO) SuggestN(n int) ([]space.Config, error) {
	out := make([]space.Config, 0, n)
	for i := 0; i < n; i++ {
		cfg, err := p.Suggest()
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// Observe implements optimizer.Optimizer. When every particle in the swarm
// has been evaluated this iteration, velocities and positions advance.
func (p *PSO) Observe(cfg space.Config, value float64) error {
	if err := p.Recorder.Observe(cfg, value); err != nil {
		return err
	}
	key := cfg.Key()
	matched := false
	for _, pt := range p.particles {
		if pt.key == key {
			pt.key = ""
			matched = true
			if value < pt.bestVal {
				pt.bestVal = value
				copy(pt.bestPos, pt.pos)
			}
			if value < p.gBestVal {
				p.gBestVal = value
				p.gBestPos = append([]float64(nil), pt.pos...)
			}
			p.observedN++
			break
		}
	}
	if !matched {
		// Foreign observation (warm start): adopt as global best if better.
		x := p.space.Encode(cfg)
		if value < p.gBestVal {
			p.gBestVal = value
			p.gBestPos = append([]float64(nil), x...)
		}
		return nil
	}
	if p.observedN >= len(p.particles) {
		p.step()
		p.observedN = 0
		p.nextIdx = 0
	}
	return nil
}

// step advances every particle one velocity update.
func (p *PSO) step() {
	frac := float64(p.iter) / float64(p.opts.DecayIters)
	if frac > 1 {
		frac = 1
	}
	w := p.opts.InertiaStart + (p.opts.InertiaEnd-p.opts.InertiaStart)*frac
	for _, pt := range p.particles {
		for j := range pt.pos {
			r1, r2 := p.rng.Float64(), p.rng.Float64()
			social := 0.0
			if p.gBestPos != nil {
				social = p.opts.Social * r2 * (p.gBestPos[j] - pt.pos[j])
			}
			pt.vel[j] = w*pt.vel[j] +
				p.opts.Cognitive*r1*(pt.bestPos[j]-pt.pos[j]) +
				social
			if pt.vel[j] > p.opts.VMax {
				pt.vel[j] = p.opts.VMax
			}
			if pt.vel[j] < -p.opts.VMax {
				pt.vel[j] = -p.opts.VMax
			}
			pt.pos[j] += pt.vel[j]
			// Reflect at the walls to keep the swarm inside the cube.
			if pt.pos[j] < 0 {
				pt.pos[j] = -pt.pos[j]
				pt.vel[j] = -pt.vel[j]
			}
			if pt.pos[j] > 1 {
				pt.pos[j] = 2 - pt.pos[j]
				pt.vel[j] = -pt.vel[j]
			}
			if pt.pos[j] < 0 {
				pt.pos[j] = 0
			}
			if pt.pos[j] > 1 {
				pt.pos[j] = 1
			}
		}
	}
	p.iter++
}
