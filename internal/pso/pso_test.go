package pso

import (
	"math/rand"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/space"
	"autotune/internal/testfunc"
)

func TestPSOOnSphere(t *testing.T) {
	f := testfunc.Sphere(4)
	p := New(f.Space, rand.New(rand.NewSource(1)))
	_, val, err := optimizer.Run(p, f.Eval, 400)
	if err != nil {
		t.Fatal(err)
	}
	if val > 0.5 {
		t.Fatalf("PSO best = %v", val)
	}
	if p.Iteration() < 10 {
		t.Fatalf("iterations = %d", p.Iteration())
	}
	if p.Name() != "pso" {
		t.Fatal("name")
	}
}

func TestPSOBeatsRandomOnAckley(t *testing.T) {
	f := testfunc.Ackley(4)
	budget := 400
	var pSum, rSum float64
	for i := 0; i < 5; i++ {
		p := New(f.Space, rand.New(rand.NewSource(int64(30+i))))
		r := optimizer.NewRandom(f.Space, rand.New(rand.NewSource(int64(30+i))))
		_, pv, err := optimizer.Run(p, f.Eval, budget)
		if err != nil {
			t.Fatal(err)
		}
		_, rv, err := optimizer.Run(r, f.Eval, budget)
		if err != nil {
			t.Fatal(err)
		}
		pSum += pv
		rSum += rv
	}
	if pSum >= rSum {
		t.Fatalf("PSO mean %v should beat random mean %v", pSum/5, rSum/5)
	}
}

func TestPSOSeedsDefault(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1).WithDefault(0.77))
	p := New(s, rand.New(rand.NewSource(2)))
	cfg, err := p.Suggest()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Float("x") != 0.77 {
		t.Fatalf("first particle = %v, want default", cfg)
	}
}

func TestPSOForeignObservation(t *testing.T) {
	f := testfunc.Sphere(2)
	p := New(f.Space, rand.New(rand.NewSource(3)))
	cfg := f.Space.Default()
	if err := p.Observe(cfg, -100); err != nil { // better than anything
		t.Fatal(err)
	}
	if _, v, ok := p.Best(); !ok || v != -100 {
		t.Fatal("foreign observation not recorded")
	}
	// Still optimizes fine afterwards.
	if _, _, err := optimizer.Run(p, f.Eval, 100); err != nil {
		t.Fatal(err)
	}
}

func TestPSOPositionsStayInCube(t *testing.T) {
	f := testfunc.Sphere(3)
	p := New(f.Space, rand.New(rand.NewSource(4)))
	for i := 0; i < 200; i++ {
		cfg, err := p.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Space.Validate(cfg); err != nil {
			t.Fatalf("invalid suggestion: %v", err)
		}
		p.Observe(cfg, f.Eval(cfg))
	}
}
