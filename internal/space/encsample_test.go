package space

import (
	"math/rand"
	"reflect"
	"testing"
)

// samplerSpaces covers the sampler's dispatch surface: unconditional mixed
// kinds, conditional chains with cat/bool/int parents (fast), and float
// parents plus constraints (slow fallback).
func samplerSpaces(t *testing.T) map[string]*Space {
	t.Helper()
	plain := MustNew(
		Float("lr", 1e-4, 1).WithLog(),
		Float("momentum", 0, 0.99).WithStep(0.01),
		Int("batch", 8, 512),
		Categorical("opt", "sgd", "adam", "lbfgs"),
		Bool("nesterov"),
	)
	cond := MustNew(
		Categorical("opt", "sgd", "adam"),
		Bool("schedule"),
		Int("layers", 1, 4),
		Float("beta2", 0.9, 0.999).WithParent("opt", "adam"),
		Float("warmup", 0, 1).WithParent("schedule", "true"),
		Float("dropout3", 0, 0.5).WithParent("layers", "3", "4"),
		// A chain: gamma depends on warmup's parent via its own parent.
		Categorical("decay", "cos", "step").WithParent("schedule", "true"),
		Float("step_size", 0.1, 0.9).WithParent("decay", "step"),
	)
	floatParent := MustNew(
		Float("x", 0, 1),
		Float("y", 0, 1).WithParent("x", "0.5"),
	)
	constrained := MustNew(
		Float("a", 0, 1),
		Float("b", 0, 1),
	).WithConstraints(Constraint{"a<b", func(c Config) bool { return c.Float("a") < c.Float("b") }})
	return map[string]*Space{
		"plain":       plain,
		"conditional": cond,
		"floatParent": floatParent,
		"constrained": constrained,
	}
}

// TestEncodedSamplerMatchesSample is the RNG-lockstep property: drawing via
// the flat sampler must consume the random stream exactly as Space.Sample
// does and produce bitwise the encoding (and, on the fast path, exactly the
// Config) that Sample + Encode would.
func TestEncodedSamplerMatchesSample(t *testing.T) {
	for name, s := range samplerSpaces(t) {
		for _, oneHot := range []bool{false, true} {
			es := NewEncodedSampler(s, oneHot)
			wantFast := name == "plain" || name == "conditional"
			if es.Fast() != wantFast {
				t.Fatalf("%s oneHot=%v: Fast() = %v, want %v", name, oneHot, es.Fast(), wantFast)
			}
			r1 := rand.New(rand.NewSource(99))
			r2 := rand.New(rand.NewSource(99))
			scalars := make([]float64, s.Dim())
			enc := make([]float64, es.Dim())
			for it := 0; it < 200; it++ {
				es.SampleInto(r1, scalars, enc)
				cfg := s.Sample(r2)
				var want []float64
				if oneHot {
					want = s.EncodeOneHot(cfg)
				} else {
					want = s.Encode(cfg)
				}
				if len(want) != len(enc) {
					t.Fatalf("%s oneHot=%v: dim %d vs %d", name, oneHot, len(enc), len(want))
				}
				for j := range want {
					if enc[j] != want[j] {
						t.Fatalf("%s oneHot=%v iter %d dim %d: sampler %v vs encode %v",
							name, oneHot, it, j, enc[j], want[j])
					}
				}
				if es.Fast() {
					if got := es.Config(scalars); !reflect.DeepEqual(got, cfg) {
						t.Fatalf("%s iter %d: Config(scalars) = %v, want %v", name, it, got, cfg)
					}
				}
			}
			// The streams must stay in lockstep after every draw.
			if a, b := r1.Float64(), r2.Float64(); a != b {
				t.Fatalf("%s oneHot=%v: RNG streams diverged: %v vs %v", name, oneHot, a, b)
			}
		}
	}
}

// TestEncodeIntoMatchesEncode pins the Into variants to the allocating forms
// over random configs, including inactive-conditional substitution.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	for name, s := range samplerSpaces(t) {
		rng := rand.New(rand.NewSource(3))
		buf := make([]float64, s.Dim())
		oh := make([]float64, s.OneHotDim())
		for it := 0; it < 100; it++ {
			cfg := s.Sample(rng)
			want := s.Encode(cfg)
			s.EncodeInto(cfg, buf)
			for j := range want {
				if buf[j] != want[j] {
					t.Fatalf("%s: EncodeInto dim %d: %v vs %v", name, j, buf[j], want[j])
				}
			}
			wantOH := s.EncodeOneHot(cfg)
			s.EncodeOneHotInto(cfg, oh)
			for j := range wantOH {
				if oh[j] != wantOH[j] {
					t.Fatalf("%s: EncodeOneHotInto dim %d: %v vs %v", name, j, oh[j], wantOH[j])
				}
			}
		}
	}
}

// TestEncodeIntoZeroAllocs pins the unconditional hot path at zero heap
// allocations per encode.
func TestEncodeIntoZeroAllocs(t *testing.T) {
	s := samplerSpaces(t)["plain"]
	cfg := s.Sample(rand.New(rand.NewSource(1)))
	buf := make([]float64, s.Dim())
	oh := make([]float64, s.OneHotDim())
	if allocs := testing.AllocsPerRun(200, func() { s.EncodeInto(cfg, buf) }); allocs != 0 {
		t.Fatalf("EncodeInto allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { s.EncodeOneHotInto(cfg, oh) }); allocs != 0 {
		t.Fatalf("EncodeOneHotInto allocates %v per call, want 0", allocs)
	}
}

// TestSampleIntoZeroAllocs pins the fast sampling path at zero heap
// allocations per draw — the property the acquisition search relies on.
func TestSampleIntoZeroAllocs(t *testing.T) {
	for _, name := range []string{"plain", "conditional"} {
		s := samplerSpaces(t)[name]
		es := NewEncodedSampler(s, true)
		if !es.Fast() {
			t.Fatalf("%s: expected fast path", name)
		}
		rng := rand.New(rand.NewSource(7))
		scalars := make([]float64, s.Dim())
		enc := make([]float64, es.Dim())
		if allocs := testing.AllocsPerRun(200, func() { es.SampleInto(rng, scalars, enc) }); allocs != 0 {
			t.Fatalf("%s: SampleInto allocates %v per draw, want 0", name, allocs)
		}
	}
}
