package space

import (
	"math"
	"math/rand"
	"strconv"
)

// scalarCond is one link of a conditional-parameter chain, precompiled to a
// membership test over the parent's scalar representation so activity can
// be decided without materializing a Config or formatting values.
type scalarCond struct {
	parent int
	kind   Kind
	catOK  []bool         // KindCategorical: accepted level indices
	boolOK [2]bool        // KindBool: accepted at index 0=false, 1=true
	intOK  map[int64]bool // KindInt: accepted values
}

func (c *scalarCond) accept(scalars []float64) bool {
	v := scalars[c.parent]
	switch c.kind {
	case KindCategorical:
		idx := int(v)
		return idx >= 0 && idx < len(c.catOK) && c.catOK[idx]
	case KindBool:
		if v == 1 {
			return c.boolOK[1]
		}
		return c.boolOK[0]
	default: // KindInt
		return c.intOK[int64(v)]
	}
}

// EncodedSampler draws configurations directly in two flat representations —
// a "scalars" vector (one float64 per parameter: the float value, the int as
// float64, the categorical level index, bool as 0/1) and the surrogate
// encoding — without allocating a Config per candidate. RNG consumption
// mirrors Space.Sample draw for draw, and the produced encoding is bitwise
// what Encode/EncodeOneHot would return for the same sample, so switching an
// acquisition search to the sampler changes no seeded result. Only the
// winning candidate is materialized into a Config.
//
// The allocation-free fast path requires a constraint-free space whose
// conditional-parameter parents are categorical, bool, or int (float parents
// would need formatted comparison); otherwise SampleInto transparently falls
// back to Space.Sample plus EncodeInto.
type EncodedSampler struct {
	s        *Space
	oneHot   bool
	dim      int
	fast     bool
	conds    [][]scalarCond // per parameter; nil = unconditional
	defUnit  []float64      // clamp01(toUnit(default)) per parameter
	defLevel []int          // categorical default level index
}

// NewEncodedSampler compiles a sampler for s under the chosen encoding.
func NewEncodedSampler(s *Space, oneHot bool) *EncodedSampler {
	es := &EncodedSampler{
		s:        s,
		oneHot:   oneHot,
		fast:     len(s.constraints) == 0,
		conds:    make([][]scalarCond, len(s.params)),
		defUnit:  make([]float64, len(s.params)),
		defLevel: make([]int, len(s.params)),
	}
	if oneHot {
		es.dim = s.OneHotDim()
	} else {
		es.dim = s.Dim()
	}
	for i := range s.params {
		p := &s.params[i]
		dv := p.defaultValue()
		es.defUnit[i] = clamp01(p.toUnit(dv))
		if p.Kind == KindCategorical {
			sv, _ := dv.(string)
			es.defLevel[i] = p.levelIndex(sv)
		}
		for cur := p; cur.Parent != ""; {
			pi, ok := s.index[cur.Parent]
			if !ok {
				es.fast = false
				break
			}
			pp := &s.params[pi]
			cond := scalarCond{parent: pi, kind: pp.Kind}
			switch pp.Kind {
			case KindCategorical:
				cond.catOK = make([]bool, len(pp.Values))
				for l, lv := range pp.Values {
					for _, want := range cur.ParentValues {
						if lv == want {
							cond.catOK[l] = true
							break
						}
					}
				}
			case KindBool:
				for _, want := range cur.ParentValues {
					switch want {
					case "true":
						cond.boolOK[1] = true
					case "false":
						cond.boolOK[0] = true
					}
				}
			case KindInt:
				cond.intOK = make(map[int64]bool, len(cur.ParentValues))
				for _, want := range cur.ParentValues {
					// Active compares formatted strings, so only values that
					// round-trip ("7", not "007") can ever match.
					if n, err := strconv.ParseInt(want, 10, 64); err == nil && strconv.FormatInt(n, 10) == want {
						cond.intOK[n] = true
					}
				}
			default:
				// Float parents compare via formatted strings; keep the
				// exact semantics by falling back to Space.Sample.
				es.fast = false
			}
			if !es.fast {
				break
			}
			es.conds[i] = append(es.conds[i], cond)
			cur = pp
		}
	}
	return es
}

// Dim returns the encoding dimensionality.
func (es *EncodedSampler) Dim() int { return es.dim }

// Fast reports whether the allocation-free path is in use.
func (es *EncodedSampler) Fast() bool { return es.fast }

// SampleInto draws one configuration into scalars (length Space.Dim) and
// its encoding into enc (length Dim). On the fast path this performs zero
// heap allocations.
//
//autolint:hotpath
func (es *EncodedSampler) SampleInto(rng *rand.Rand, scalars, enc []float64) {
	if !es.fast {
		cfg := es.s.Sample(rng)
		es.scalarsOf(cfg, scalars)
		if es.oneHot {
			es.s.EncodeOneHotInto(cfg, enc)
		} else {
			es.s.EncodeInto(cfg, enc)
		}
		return
	}
	// One draw per parameter, mirroring Param.sampleValue exactly; with no
	// constraints, Space.sample accepts its first try, so the streams match.
	for i := range es.s.params {
		p := &es.s.params[i]
		switch p.Kind {
		case KindFloat:
			scalars[i] = p.quantize(p.fromUnitNumeric(rng.Float64()))
		case KindInt:
			scalars[i] = float64(int64(math.Round(p.fromUnitNumeric(rng.Float64()))))
		case KindCategorical:
			scalars[i] = float64(rng.Intn(len(p.Values)))
		default:
			if rng.Intn(2) == 1 {
				scalars[i] = 1
			} else {
				scalars[i] = 0
			}
		}
	}
	es.encodeScalars(scalars, enc)
}

// encodeScalars writes the encoding of a scalars vector into enc,
// reproducing Encode/EncodeOneHot bitwise (same toUnit arithmetic, same
// inactive-default substitution).
func (es *EncodedSampler) encodeScalars(scalars, enc []float64) {
	off := 0
	for i := range es.s.params {
		p := &es.s.params[i]
		active := true
		for c := range es.conds[i] {
			if !es.conds[i][c].accept(scalars) {
				active = false
				break
			}
		}
		if p.Kind == KindCategorical {
			idx := es.defLevel[i]
			if active {
				idx = int(scalars[i])
			}
			if es.oneHot {
				for j := range p.Values {
					if j == idx {
						enc[off+j] = 1
					} else {
						enc[off+j] = 0
					}
				}
				off += len(p.Values)
				continue
			}
			u := 0.0
			if len(p.Values) > 1 {
				if idx < 0 {
					idx = 0
				}
				u = float64(idx) / float64(len(p.Values)-1)
			}
			enc[off] = clamp01(u)
			off++
			continue
		}
		u := es.defUnit[i]
		if active {
			switch p.Kind {
			case KindFloat, KindInt:
				u = clamp01(p.unitOf(scalars[i]))
			default: // KindBool: scalars already hold toUnit's 0/1
				u = scalars[i]
			}
		}
		enc[off] = u
		off++
	}
}

// unitOf is toUnit's numeric branch without the interface boxing.
func (p *Param) unitOf(f float64) float64 {
	if p.Max == p.Min {
		return 0
	}
	if p.Log {
		if f < p.Min {
			f = p.Min
		}
		return (math.Log(f) - math.Log(p.Min)) / (math.Log(p.Max) - math.Log(p.Min))
	}
	return (f - p.Min) / (p.Max - p.Min)
}

// scalarsOf converts a sampled Config to its scalar representation.
func (es *EncodedSampler) scalarsOf(cfg Config, scalars []float64) {
	for i := range es.s.params {
		p := &es.s.params[i]
		switch v := cfg[p.Name].(type) {
		case float64:
			scalars[i] = v
		case int64:
			scalars[i] = float64(v)
		case string:
			idx := p.levelIndex(v)
			if idx < 0 {
				idx = 0
			}
			scalars[i] = float64(idx)
		case bool:
			if v {
				scalars[i] = 1
			} else {
				scalars[i] = 0
			}
		default:
			scalars[i] = 0
		}
	}
}

// Config materializes a scalars vector into the typed configuration the
// corresponding Sample call would have produced. Only winners pay this
// allocation.
func (es *EncodedSampler) Config(scalars []float64) Config {
	cfg := make(Config, len(es.s.params))
	for i := range es.s.params {
		p := &es.s.params[i]
		switch p.Kind {
		case KindFloat:
			cfg[p.Name] = scalars[i]
		case KindInt:
			cfg[p.Name] = int64(scalars[i])
		case KindCategorical:
			idx := int(scalars[i])
			if idx < 0 {
				idx = 0
			}
			if idx >= len(p.Values) {
				idx = len(p.Values) - 1
			}
			cfg[p.Name] = p.Values[idx]
		default:
			cfg[p.Name] = scalars[i] == 1
		}
	}
	return cfg
}
