// Package space models tunable configuration spaces: typed parameters
// (float, int, categorical, bool) with bounds, log scaling, quantization,
// special values, conditional activation ("structured spaces"), and
// cross-parameter constraints.
//
// A Space supports the three views every optimizer in this framework needs:
//
//   - the typed view: Config maps parameter names to Go values;
//   - the unit-cube view: Encode/Decode map configs to [0,1]^d with one
//     dimension per parameter (categoricals become scaled indices);
//   - the one-hot view: EncodeOneHot expands categoricals to indicator
//     dimensions, which distance-based surrogates (GPs) prefer.
//
// All sampling is driven by an explicit *rand.Rand so that experiments are
// reproducible.
package space

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates parameter types.
type Kind int

// Parameter kinds.
const (
	KindFloat Kind = iota
	KindInt
	KindCategorical
	KindBool
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindCategorical:
		return "categorical"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param describes one tunable parameter. Construct with Float, Int,
// Categorical, or Bool and refine with the With* builder methods; zero
// values are not meaningful.
type Param struct {
	Name string
	Kind Kind

	// Numeric bounds, inclusive. For KindInt they are integral.
	Min, Max float64
	// Log requests log-scale encoding; requires Min > 0.
	Log bool
	// Step quantizes float parameters to multiples of Step above Min
	// (0 means continuous). Ints always quantize to 1.
	Step float64
	// Values lists categorical levels in declaration order.
	Values []string
	// Def is the default value (typed as the parameter's Go type).
	Def any
	// Special lists "special" numeric values (e.g. 0 = feature off) that
	// biased samplers should hit with extra probability.
	Special []float64
	// Parent and ParentValues make this parameter conditional: it is
	// active only when the parent parameter's value (in string form) is
	// one of ParentValues.
	Parent       string
	ParentValues []string
}

// Float declares a continuous parameter on [min, max].
func Float(name string, min, max float64) Param {
	return Param{Name: name, Kind: KindFloat, Min: min, Max: max, Def: (min + max) / 2}
}

// Int declares an integer parameter on [min, max] inclusive.
func Int(name string, min, max int64) Param {
	return Param{Name: name, Kind: KindInt, Min: float64(min), Max: float64(max), Def: (min + max) / 2}
}

// Categorical declares a categorical parameter with the given levels.
func Categorical(name string, values ...string) Param {
	var def any
	if len(values) > 0 {
		def = values[0]
	}
	return Param{Name: name, Kind: KindCategorical, Values: values, Def: def}
}

// Bool declares a boolean parameter defaulting to false.
func Bool(name string) Param {
	return Param{Name: name, Kind: KindBool, Def: false}
}

// WithLog enables log-scale encoding. Min must be positive.
func (p Param) WithLog() Param { p.Log = true; return p }

// WithStep quantizes a float parameter to multiples of step above Min.
func (p Param) WithStep(step float64) Param { p.Step = step; return p }

// WithDefault sets the default value.
func (p Param) WithDefault(def any) Param { p.Def = def; return p }

// WithSpecial marks numeric special values for biased sampling.
func (p Param) WithSpecial(vals ...float64) Param { p.Special = vals; return p }

// WithParent makes the parameter conditional on parent taking one of the
// given values (string form: "true"/"false" for bools, decimal for ints).
func (p Param) WithParent(parent string, values ...string) Param {
	p.Parent = parent
	p.ParentValues = values
	return p
}

// IsNumeric reports whether the parameter is float- or int-kinded.
func (p Param) IsNumeric() bool { return p.Kind == KindFloat || p.Kind == KindInt }

// Levels returns the number of categorical levels (bools have 2, numerics 0).
func (p Param) Levels() int {
	switch p.Kind {
	case KindCategorical:
		return len(p.Values)
	case KindBool:
		return 2
	default:
		return 0
	}
}

// Config is an assignment of values to parameter names. Values are float64
// for KindFloat, int64 for KindInt, string for KindCategorical, and bool
// for KindBool.
type Config map[string]any

// Clone returns a shallow copy of the config (values are scalars).
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Float returns the named value coerced to float64. Missing keys and
// non-numeric values return 0.
func (c Config) Float(name string) float64 {
	switch v := c[name].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	case bool:
		if v {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Int returns the named value coerced to int64 (floats are rounded).
func (c Config) Int(name string) int64 {
	switch v := c[name].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case float64:
		return int64(math.Round(v))
	case bool:
		if v {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Str returns the named value as a string ("" if missing).
func (c Config) Str(name string) string {
	switch v := c[name].(type) {
	case string:
		return v
	case nil:
		return ""
	default:
		return valueString(v)
	}
}

// Bool returns the named value as a bool (false if missing or non-bool).
func (c Config) Bool(name string) bool {
	b, _ := c[name].(bool)
	return b
}

// Key returns a canonical, order-independent string form of the config,
// suitable as a map key or for deduplication.
func (c Config) Key() string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(valueString(c[k]))
	}
	return b.String()
}

func valueString(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', 12, 64)
	case int64:
		return strconv.FormatInt(x, 10)
	case int:
		return strconv.Itoa(x)
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Constraint is a named cross-parameter validity predicate. Check must be
// pure and fast; it is called during sampling and validation.
type Constraint struct {
	Name  string
	Check func(Config) bool
}

// Space is an immutable set of parameters plus constraints.
type Space struct {
	params      []Param
	index       map[string]int
	constraints []Constraint
}

// Errors returned by space construction and validation.
var (
	ErrDuplicateParam = errors.New("space: duplicate parameter name")
	ErrBadBounds      = errors.New("space: invalid bounds")
	ErrUnknownParam   = errors.New("space: unknown parameter")
	ErrBadValue       = errors.New("space: value out of domain")
	ErrConstraint     = errors.New("space: constraint violated")
)

// New validates the parameter list and returns a Space.
func New(params ...Param) (*Space, error) {
	s := &Space{index: make(map[string]int, len(params))}
	for _, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("space: empty parameter name")
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateParam, p.Name)
		}
		switch p.Kind {
		case KindFloat, KindInt:
			if !(p.Min < p.Max) && !(p.Min == p.Max) {
				return nil, fmt.Errorf("%w: %q [%g, %g]", ErrBadBounds, p.Name, p.Min, p.Max)
			}
			if p.Log && p.Min <= 0 {
				return nil, fmt.Errorf("%w: %q log scale requires Min > 0", ErrBadBounds, p.Name)
			}
			if p.Step < 0 {
				return nil, fmt.Errorf("%w: %q negative step", ErrBadBounds, p.Name)
			}
		case KindCategorical:
			if len(p.Values) == 0 {
				return nil, fmt.Errorf("%w: %q has no values", ErrBadBounds, p.Name)
			}
			seen := map[string]bool{}
			for _, v := range p.Values {
				if seen[v] {
					return nil, fmt.Errorf("%w: %q duplicate level %q", ErrBadBounds, p.Name, v)
				}
				seen[v] = true
			}
		case KindBool:
			// nothing to validate
		default:
			return nil, fmt.Errorf("space: %q has invalid kind %d", p.Name, p.Kind)
		}
		s.index[p.Name] = len(s.params)
		s.params = append(s.params, p)
	}
	// Validate conditional references (must point to earlier-declared params).
	for _, p := range s.params {
		if p.Parent == "" {
			continue
		}
		pi, ok := s.index[p.Parent]
		if !ok {
			return nil, fmt.Errorf("%w: %q parent %q", ErrUnknownParam, p.Name, p.Parent)
		}
		if s.params[pi].Name == p.Name {
			return nil, fmt.Errorf("space: %q is its own parent", p.Name)
		}
		if len(p.ParentValues) == 0 {
			return nil, fmt.Errorf("space: %q conditional without parent values", p.Name)
		}
	}
	return s, nil
}

// MustNew is New but panics on error; intended for static space literals.
func MustNew(params ...Param) *Space {
	s, err := New(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// WithConstraints returns a copy of the space with the constraints appended.
func (s *Space) WithConstraints(cs ...Constraint) *Space {
	out := &Space{params: s.params, index: s.index}
	out.constraints = append(append([]Constraint(nil), s.constraints...), cs...)
	return out
}

// Params returns the parameters in declaration order. The slice must not be
// modified.
func (s *Space) Params() []Param { return s.params }

// Constraints returns the registered constraints.
func (s *Space) Constraints() []Constraint { return s.constraints }

// Dim returns the number of parameters (the unit-cube dimensionality).
func (s *Space) Dim() int { return len(s.params) }

// Param returns the named parameter and whether it exists.
func (s *Space) Param(name string) (Param, bool) {
	i, ok := s.index[name]
	if !ok {
		return Param{}, false
	}
	return s.params[i], true
}

// Default returns the configuration of all defaults.
func (s *Space) Default() Config {
	cfg := make(Config, len(s.params))
	for _, p := range s.params {
		cfg[p.Name] = p.defaultValue()
	}
	return cfg
}

func (p Param) defaultValue() any {
	if p.Def != nil {
		switch p.Kind {
		case KindFloat:
			switch v := p.Def.(type) {
			case float64:
				return v
			case int:
				return float64(v)
			case int64:
				return float64(v)
			}
		case KindInt:
			switch v := p.Def.(type) {
			case int64:
				return v
			case int:
				return int64(v)
			case float64:
				return int64(math.Round(v))
			}
		case KindCategorical:
			if v, ok := p.Def.(string); ok {
				return v
			}
		case KindBool:
			if v, ok := p.Def.(bool); ok {
				return v
			}
		}
	}
	// Fallbacks.
	switch p.Kind {
	case KindFloat:
		return (p.Min + p.Max) / 2
	case KindInt:
		return int64(math.Round((p.Min + p.Max) / 2))
	case KindCategorical:
		return p.Values[0]
	default:
		return false
	}
}

// Active reports whether the named parameter is active under cfg, following
// the conditional chain to the root.
func (s *Space) Active(cfg Config, name string) bool {
	i, ok := s.index[name]
	if !ok {
		return false
	}
	p := s.params[i]
	for p.Parent != "" {
		pv := valueString(cfg[p.Parent])
		match := false
		for _, want := range p.ParentValues {
			if pv == want {
				match = true
				break
			}
		}
		if !match {
			return false
		}
		pi := s.index[p.Parent]
		p = s.params[pi]
	}
	return true
}

// Validate checks that cfg assigns an in-domain value to every parameter and
// satisfies all constraints. Inactive conditional parameters may hold any
// in-domain value (they are ignored by consumers).
func (s *Space) Validate(cfg Config) error {
	for _, p := range s.params {
		v, ok := cfg[p.Name]
		if !ok {
			return fmt.Errorf("%w: missing %q", ErrBadValue, p.Name)
		}
		switch p.Kind {
		case KindFloat:
			f, ok := v.(float64)
			if !ok {
				return fmt.Errorf("%w: %q wants float64, got %T", ErrBadValue, p.Name, v)
			}
			if f < p.Min-1e-9 || f > p.Max+1e-9 {
				return fmt.Errorf("%w: %q = %g outside [%g, %g]", ErrBadValue, p.Name, f, p.Min, p.Max)
			}
		case KindInt:
			n, ok := v.(int64)
			if !ok {
				return fmt.Errorf("%w: %q wants int64, got %T", ErrBadValue, p.Name, v)
			}
			if float64(n) < p.Min || float64(n) > p.Max {
				return fmt.Errorf("%w: %q = %d outside [%g, %g]", ErrBadValue, p.Name, n, p.Min, p.Max)
			}
		case KindCategorical:
			sv, ok := v.(string)
			if !ok {
				return fmt.Errorf("%w: %q wants string, got %T", ErrBadValue, p.Name, v)
			}
			if p.levelIndex(sv) < 0 {
				return fmt.Errorf("%w: %q = %q not in %v", ErrBadValue, p.Name, sv, p.Values)
			}
		case KindBool:
			if _, ok := v.(bool); !ok {
				return fmt.Errorf("%w: %q wants bool, got %T", ErrBadValue, p.Name, v)
			}
		}
	}
	for _, c := range s.constraints {
		if !c.Check(cfg) {
			return fmt.Errorf("%w: %s", ErrConstraint, c.Name)
		}
	}
	return nil
}

func (p Param) levelIndex(v string) int {
	for i, lv := range p.Values {
		if lv == v {
			return i
		}
	}
	return -1
}

// sampleTries bounds rejection sampling against constraints.
const sampleTries = 256

// Sample draws a uniform random configuration (log-uniform for log params).
// If constraints are present it rejection-samples up to a bounded number of
// tries and returns the last draw even if invalid — callers that require
// validity should use SampleValid.
func (s *Space) Sample(rng *rand.Rand) Config {
	cfg, _ := s.sample(rng)
	return cfg
}

// SampleValid is Sample but returns ErrConstraint if no valid configuration
// was found within the internal try budget.
func (s *Space) SampleValid(rng *rand.Rand) (Config, error) {
	cfg, ok := s.sample(rng)
	if !ok {
		return cfg, fmt.Errorf("%w: no valid sample in %d tries", ErrConstraint, sampleTries)
	}
	return cfg, nil
}

func (s *Space) sample(rng *rand.Rand) (Config, bool) {
	var cfg Config
	for try := 0; try < sampleTries; try++ {
		cfg = make(Config, len(s.params))
		for _, p := range s.params {
			cfg[p.Name] = p.sampleValue(rng)
		}
		if s.satisfies(cfg) {
			return cfg, true
		}
	}
	return cfg, false
}

func (s *Space) satisfies(cfg Config) bool {
	for _, c := range s.constraints {
		if !c.Check(cfg) {
			return false
		}
	}
	return true
}

func (p Param) sampleValue(rng *rand.Rand) any {
	switch p.Kind {
	case KindFloat:
		return p.fromUnit(rng.Float64())
	case KindInt:
		return int64(math.Round(p.fromUnitNumeric(rng.Float64())))
	case KindCategorical:
		return p.Values[rng.Intn(len(p.Values))]
	default:
		return rng.Intn(2) == 1
	}
}

// SampleN draws n configurations.
func (s *Space) SampleN(rng *rand.Rand, n int) []Config {
	out := make([]Config, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// fromUnit maps u in [0,1] to the parameter's typed value.
func (p Param) fromUnit(u float64) any {
	switch p.Kind {
	case KindFloat:
		return p.quantize(p.fromUnitNumeric(u))
	case KindInt:
		return int64(math.Round(p.fromUnitNumeric(u)))
	case KindCategorical:
		i := int(u * float64(len(p.Values)))
		if i >= len(p.Values) {
			i = len(p.Values) - 1
		}
		if i < 0 {
			i = 0
		}
		return p.Values[i]
	default:
		return u >= 0.5
	}
}

func (p Param) fromUnitNumeric(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	if p.Log {
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		return math.Exp(lo + u*(hi-lo))
	}
	return p.Min + u*(p.Max-p.Min)
}

// toUnit maps a typed value to [0,1].
func (p Param) toUnit(v any) float64 {
	switch p.Kind {
	case KindFloat, KindInt:
		var f float64
		switch x := v.(type) {
		case float64:
			f = x
		case int64:
			f = float64(x)
		case int:
			f = float64(x)
		default:
			f = p.Min
		}
		if p.Max == p.Min {
			return 0
		}
		if p.Log {
			if f < p.Min {
				f = p.Min
			}
			return (math.Log(f) - math.Log(p.Min)) / (math.Log(p.Max) - math.Log(p.Min))
		}
		return (f - p.Min) / (p.Max - p.Min)
	case KindCategorical:
		sv, _ := v.(string)
		i := p.levelIndex(sv)
		if i < 0 {
			i = 0
		}
		if len(p.Values) == 1 {
			return 0
		}
		return float64(i) / float64(len(p.Values)-1)
	default:
		if b, _ := v.(bool); b {
			return 1
		}
		return 0
	}
}

func (p Param) quantize(f float64) float64 {
	if p.Step > 0 {
		f = p.Min + math.Round((f-p.Min)/p.Step)*p.Step
	}
	if f < p.Min {
		f = p.Min
	}
	if f > p.Max {
		f = p.Max
	}
	return f
}

// Encode maps cfg to the unit cube [0,1]^Dim, one dimension per parameter
// in declaration order. Inactive conditional parameters encode as their
// default so that surrogates see a consistent representation.
func (s *Space) Encode(cfg Config) []float64 {
	x := make([]float64, len(s.params))
	s.EncodeInto(cfg, x)
	return x
}

// EncodeInto is Encode writing into x, which must have length Dim. For
// spaces without conditional parameters a warm call performs zero heap
// allocations (conditionals box their default value when inactive), letting
// the acquisition search re-encode thousands of candidates into one buffer.
//
//autolint:hotpath
func (s *Space) EncodeInto(cfg Config, x []float64) {
	if len(x) != len(s.params) {
		panic(fmt.Sprintf("space: encode into %d dims, want %d", len(x), len(s.params)))
	}
	for i := range s.params {
		p := &s.params[i]
		v := cfg[p.Name]
		if p.Parent != "" && !s.Active(cfg, p.Name) {
			v = p.defaultValue()
		}
		x[i] = clamp01(p.toUnit(v))
	}
}

// Decode maps a unit-cube point back to a typed configuration, clipping and
// quantizing as needed. It is total: any x (even outside [0,1]) decodes.
func (s *Space) Decode(x []float64) Config {
	cfg := make(Config, len(s.params))
	for i, p := range s.params {
		u := 0.0
		if i < len(x) {
			u = clamp01(x[i])
		}
		cfg[p.Name] = p.fromUnit(u)
	}
	return cfg
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// OneHotDim returns the dimensionality of the one-hot encoding: one
// dimension per numeric/bool parameter and Levels() per categorical.
func (s *Space) OneHotDim() int {
	d := 0
	for _, p := range s.params {
		if p.Kind == KindCategorical {
			d += len(p.Values)
		} else {
			d++
		}
	}
	return d
}

// EncodeOneHot maps cfg to a vector where numeric and bool parameters take
// one [0,1] dimension and categoricals expand to indicator dimensions.
func (s *Space) EncodeOneHot(cfg Config) []float64 {
	x := make([]float64, s.OneHotDim())
	s.EncodeOneHotInto(cfg, x)
	return x
}

// EncodeOneHotInto is EncodeOneHot writing into x, which must have length
// OneHotDim. Allocation behavior matches EncodeInto.
//
//autolint:hotpath
func (s *Space) EncodeOneHotInto(cfg Config, x []float64) {
	if len(x) != s.OneHotDim() {
		panic(fmt.Sprintf("space: one-hot encode into %d dims, want %d", len(x), s.OneHotDim()))
	}
	off := 0
	for i := range s.params {
		p := &s.params[i]
		v := cfg[p.Name]
		if p.Parent != "" && !s.Active(cfg, p.Name) {
			v = p.defaultValue()
		}
		if p.Kind == KindCategorical {
			sv, _ := v.(string)
			idx := p.levelIndex(sv)
			for j := range p.Values {
				if j == idx {
					x[off+j] = 1
				} else {
					x[off+j] = 0
				}
			}
			off += len(p.Values)
		} else {
			x[off] = clamp01(p.toUnit(v))
			off++
		}
	}
}

// Grid returns the cartesian-product grid with `levels` points per numeric
// parameter (all levels for categoricals and bools). The total size is the
// product over parameters; callers are responsible for keeping it sane.
func (s *Space) Grid(levels int) []Config {
	if levels < 1 {
		levels = 1
	}
	perParam := make([][]any, len(s.params))
	for i, p := range s.params {
		perParam[i] = p.gridValues(levels)
	}
	out := []Config{{}}
	for i, p := range s.params {
		next := make([]Config, 0, len(out)*len(perParam[i]))
		for _, base := range out {
			for _, v := range perParam[i] {
				c := base.Clone()
				c[p.Name] = v
				next = append(next, c)
			}
		}
		out = next
	}
	if len(s.constraints) > 0 {
		valid := out[:0]
		for _, c := range out {
			if s.satisfies(c) {
				valid = append(valid, c)
			}
		}
		out = valid
	}
	return out
}

// GridBudget returns a grid of at most roughly `budget` points by choosing
// per-numeric-parameter levels = floor(budget^(1/d)) (minimum 2 when the
// budget allows).
func (s *Space) GridBudget(budget int) []Config {
	d := 0
	for _, p := range s.params {
		if p.IsNumeric() {
			d++
		}
	}
	levels := 1
	if d > 0 && budget > 1 {
		levels = int(math.Floor(math.Pow(float64(budget), 1/float64(d))))
		if levels < 1 {
			levels = 1
		}
	}
	return s.Grid(levels)
}

func (p Param) gridValues(levels int) []any {
	switch p.Kind {
	case KindCategorical:
		out := make([]any, len(p.Values))
		for i, v := range p.Values {
			out[i] = v
		}
		return out
	case KindBool:
		return []any{false, true}
	default:
		if levels == 1 {
			return []any{p.fromUnit(0.5)}
		}
		out := make([]any, 0, levels)
		seen := map[string]bool{}
		for i := 0; i < levels; i++ {
			v := p.fromUnit(float64(i) / float64(levels-1))
			k := valueString(v)
			if !seen[k] {
				seen[k] = true
				out = append(out, v)
			}
		}
		return out
	}
}

// Neighbor perturbs cfg: each numeric parameter takes a Gaussian step of
// the given scale (in unit-cube units), and each categorical/bool resamples
// with probability scale. Used by simulated annealing and local search.
func (s *Space) Neighbor(cfg Config, scale float64, rng *rand.Rand) Config {
	out := cfg.Clone()
	for _, p := range s.params {
		switch p.Kind {
		case KindFloat, KindInt:
			u := p.toUnit(cfg[p.Name])
			u += rng.NormFloat64() * scale
			out[p.Name] = p.fromUnit(clamp01(u))
		case KindCategorical:
			if rng.Float64() < scale {
				out[p.Name] = p.Values[rng.Intn(len(p.Values))]
			}
		case KindBool:
			if rng.Float64() < scale {
				out[p.Name] = !cfg.Bool(p.Name)
			}
		}
	}
	return out
}

// Clip returns cfg with every numeric value clipped into bounds and
// quantized, categorical values snapped to a valid level, and missing
// parameters filled with defaults.
func (s *Space) Clip(cfg Config) Config {
	out := make(Config, len(s.params))
	for _, p := range s.params {
		v, ok := cfg[p.Name]
		if !ok {
			out[p.Name] = p.defaultValue()
			continue
		}
		switch p.Kind {
		case KindFloat:
			f := cfg.Float(p.Name)
			out[p.Name] = p.quantize(f)
		case KindInt:
			f := math.Round(cfg.Float(p.Name))
			if f < p.Min {
				f = p.Min
			}
			if f > p.Max {
				f = p.Max
			}
			out[p.Name] = int64(f)
		case KindCategorical:
			sv, _ := v.(string)
			if p.levelIndex(sv) < 0 {
				out[p.Name] = p.Values[0]
			} else {
				out[p.Name] = sv
			}
		case KindBool:
			b, _ := v.(bool)
			out[p.Name] = b
		}
	}
	return out
}

// Names returns the parameter names in declaration order.
func (s *Space) Names() []string {
	out := make([]string, len(s.params))
	for i, p := range s.params {
		out[i] = p.Name
	}
	return out
}

// Subspace returns a new Space containing only the named parameters (in the
// given order), dropping constraints that reference removed parameters is
// the caller's responsibility — constraints are not carried over.
func (s *Space) Subspace(names ...string) (*Space, error) {
	params := make([]Param, 0, len(names))
	keep := map[string]bool{}
	for _, n := range names {
		keep[n] = true
	}
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownParam, n)
		}
		p := s.params[i]
		if p.Parent != "" && !keep[p.Parent] {
			p.Parent, p.ParentValues = "", nil // orphaned conditional becomes unconditional
		}
		params = append(params, p)
	}
	return New(params...)
}
