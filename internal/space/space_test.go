package space

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := New(
		Float("alpha", 0, 1).WithDefault(0.25),
		Int("threads", 1, 64).WithDefault(int64(8)),
		Float("buffer_mb", 64, 16384).WithLog().WithDefault(128.0),
		Categorical("flush", "fsync", "O_DIRECT", "nosync").WithDefault("fsync"),
		Bool("compress"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		params []Param
	}{
		{"duplicate", []Param{Float("x", 0, 1), Float("x", 0, 1)}},
		{"bad bounds", []Param{Float("x", 2, 1)}},
		{"log nonpositive", []Param{Float("x", 0, 1).WithLog()}},
		{"empty categorical", []Param{Categorical("c")}},
		{"dup level", []Param{Categorical("c", "a", "a")}},
		{"unknown parent", []Param{Float("x", 0, 1).WithParent("nope", "1")}},
		{"parent without values", []Param{Bool("p"), Float("x", 0, 1).WithParent("p")}},
		{"negative step", []Param{Float("x", 0, 1).WithStep(-1)}},
		{"empty name", []Param{Float("", 0, 1)}},
	}
	for _, c := range cases {
		if _, err := New(c.params...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDefault(t *testing.T) {
	s := testSpace(t)
	d := s.Default()
	if d.Float("alpha") != 0.25 {
		t.Fatalf("alpha default = %v", d["alpha"])
	}
	if d.Int("threads") != 8 {
		t.Fatalf("threads default = %v", d["threads"])
	}
	if d.Str("flush") != "fsync" {
		t.Fatalf("flush default = %v", d["flush"])
	}
	if d.Bool("compress") != false {
		t.Fatal("compress default should be false")
	}
	if err := s.Validate(d); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
}

func TestDefaultCoercion(t *testing.T) {
	// Int defaults given as plain int should coerce to int64.
	s := MustNew(Int("n", 1, 10).WithDefault(3))
	if v, ok := s.Default()["n"].(int64); !ok || v != 3 {
		t.Fatalf("default = %v (%T)", s.Default()["n"], s.Default()["n"])
	}
	// Float default given as int.
	s2 := MustNew(Float("f", 0, 10).WithDefault(7))
	if v, ok := s2.Default()["f"].(float64); !ok || v != 7 {
		t.Fatalf("default = %v (%T)", s2.Default()["f"], s2.Default()["f"])
	}
}

func TestSampleInDomain(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		cfg := s.Sample(rng)
		if err := s.Validate(cfg); err != nil {
			t.Fatalf("sample %d invalid: %v", i, err)
		}
	}
}

func TestLogSamplingSkew(t *testing.T) {
	s := MustNew(Float("x", 1, 10000).WithLog())
	rng := rand.New(rand.NewSource(2))
	below := 0
	n := 4000
	for i := 0; i < n; i++ {
		if s.Sample(rng).Float("x") < 100 {
			below++
		}
	}
	// Log-uniform: P(x < 100) = log(100)/log(10000) = 0.5.
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("log-uniform fraction below 100 = %v, want ~0.5", frac)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		cfg := s.Sample(rng)
		x := s.Encode(cfg)
		if len(x) != s.Dim() {
			t.Fatalf("encode dim %d, want %d", len(x), s.Dim())
		}
		for _, u := range x {
			if u < 0 || u > 1 {
				t.Fatalf("encode outside cube: %v", x)
			}
		}
		back := s.Decode(x)
		// Numerics round-trip approximately, categoricals/bools exactly.
		if back.Str("flush") != cfg.Str("flush") {
			t.Fatalf("flush round trip: %v -> %v", cfg.Str("flush"), back.Str("flush"))
		}
		if back.Bool("compress") != cfg.Bool("compress") {
			t.Fatal("compress round trip failed")
		}
		if math.Abs(back.Float("alpha")-cfg.Float("alpha")) > 1e-9 {
			t.Fatalf("alpha round trip: %v -> %v", cfg.Float("alpha"), back.Float("alpha"))
		}
		if back.Int("threads") != cfg.Int("threads") {
			t.Fatalf("threads round trip: %v -> %v", cfg.Int("threads"), back.Int("threads"))
		}
		relErr := math.Abs(back.Float("buffer_mb")-cfg.Float("buffer_mb")) / cfg.Float("buffer_mb")
		if relErr > 1e-9 {
			t.Fatalf("buffer_mb round trip rel err %v", relErr)
		}
	}
}

func TestDecodeTotality(t *testing.T) {
	s := testSpace(t)
	// Out-of-range and short inputs must still decode to valid configs.
	for _, x := range [][]float64{
		{-1, 2, 0.5, 99, -3},
		{},
		{0.5},
	} {
		cfg := s.Decode(x)
		if err := s.Validate(cfg); err != nil {
			t.Fatalf("decode(%v) invalid: %v", x, err)
		}
	}
}

func TestQuantization(t *testing.T) {
	s := MustNew(Float("q", 0, 10).WithStep(2.5))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		v := s.Sample(rng).Float("q")
		mult := v / 2.5
		if math.Abs(mult-math.Round(mult)) > 1e-9 {
			t.Fatalf("value %v not a multiple of 2.5", v)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	s := testSpace(t)
	cfg := s.Default()
	cfg["alpha"] = 5.0
	if err := s.Validate(cfg); !errors.Is(err, ErrBadValue) {
		t.Fatalf("out of range: %v", err)
	}
	cfg = s.Default()
	cfg["flush"] = "bogus"
	if err := s.Validate(cfg); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad level: %v", err)
	}
	cfg = s.Default()
	delete(cfg, "threads")
	if err := s.Validate(cfg); !errors.Is(err, ErrBadValue) {
		t.Fatalf("missing: %v", err)
	}
	cfg = s.Default()
	cfg["threads"] = 8 // wrong type: int not int64
	if err := s.Validate(cfg); !errors.Is(err, ErrBadValue) {
		t.Fatalf("wrong type: %v", err)
	}
}

func TestConstraints(t *testing.T) {
	s := testSpace(t).WithConstraints(Constraint{
		Name: "threads <= buffer_mb/64",
		Check: func(c Config) bool {
			return float64(c.Int("threads")) <= c.Float("buffer_mb")/64
		},
	})
	rng := rand.New(rand.NewSource(5))
	cfg, err := s.SampleValid(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	bad := s.Default()
	bad["threads"] = int64(64)
	bad["buffer_mb"] = 64.0
	if err := s.Validate(bad); !errors.Is(err, ErrConstraint) {
		t.Fatalf("want constraint violation, got %v", err)
	}
}

func TestConditionalActive(t *testing.T) {
	s := MustNew(
		Bool("jit"),
		Float("jit_above_cost", 0, 1e6).WithParent("jit", "true"),
		Categorical("mode", "a", "b", "c"),
		Float("a_only", 0, 1).WithParent("mode", "a"),
		Float("nested", 0, 1).WithParent("a_only", "0.5"), // contrived nesting
	)
	cfg := s.Default()
	cfg["jit"] = false
	if s.Active(cfg, "jit_above_cost") {
		t.Fatal("child active with jit=false")
	}
	cfg["jit"] = true
	if !s.Active(cfg, "jit_above_cost") {
		t.Fatal("child inactive with jit=true")
	}
	cfg["mode"] = "b"
	if s.Active(cfg, "a_only") {
		t.Fatal("a_only active with mode=b")
	}
	if s.Active(cfg, "nested") {
		t.Fatal("nested should be inactive when ancestor inactive")
	}
	if s.Active(cfg, "missing") {
		t.Fatal("unknown param should be inactive")
	}
}

func TestEncodeInactiveUsesDefault(t *testing.T) {
	s := MustNew(
		Bool("jit"),
		Float("jit_cost", 0, 100).WithDefault(10.0).WithParent("jit", "true"),
	)
	off := s.Default()
	off["jit"] = false
	off["jit_cost"] = 77.0 // garbage value; should be masked
	on := off.Clone()
	on["jit_cost"] = 10.0 // same as default
	xOff := s.Encode(off)
	xOn := s.Encode(on)
	if xOff[1] != xOn[1] {
		t.Fatalf("inactive encode %v, want default encode %v", xOff[1], xOn[1])
	}
}

func TestOneHot(t *testing.T) {
	s := testSpace(t)
	if got, want := s.OneHotDim(), 4+3; got != want {
		t.Fatalf("OneHotDim = %d, want %d", got, want)
	}
	cfg := s.Default()
	cfg["flush"] = "O_DIRECT"
	x := s.EncodeOneHot(cfg)
	if len(x) != 7 {
		t.Fatalf("len = %d", len(x))
	}
	// flush occupies dims 3..5 (alpha, threads, buffer, then categorical).
	if x[3] != 0 || x[4] != 1 || x[5] != 0 {
		t.Fatalf("one-hot block = %v", x[3:6])
	}
	ones := 0
	for _, v := range x[3:6] {
		if v == 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatal("one-hot block should have exactly one 1")
	}
}

func TestGrid(t *testing.T) {
	s := MustNew(
		Float("x", 0, 1),
		Categorical("c", "a", "b"),
	)
	g := s.Grid(3)
	if len(g) != 6 {
		t.Fatalf("grid size = %d, want 6", len(g))
	}
	for _, cfg := range g {
		if err := s.Validate(cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Grid filters constrained-out points.
	sc := s.WithConstraints(Constraint{"x<0.6", func(c Config) bool { return c.Float("x") < 0.6 }})
	g = sc.Grid(3) // x levels: 0, 0.5, 1 -> 1 filtered out
	if len(g) != 4 {
		t.Fatalf("constrained grid size = %d, want 4", len(g))
	}
}

func TestGridBudget(t *testing.T) {
	s := MustNew(Float("x", 0, 1), Float("y", 0, 1))
	g := s.GridBudget(25)
	if len(g) != 25 {
		t.Fatalf("grid budget 25 -> %d points", len(g))
	}
	g = s.GridBudget(20) // floor(sqrt(20)) = 4 -> 16
	if len(g) != 16 {
		t.Fatalf("grid budget 20 -> %d points", len(g))
	}
}

func TestGridDedupQuantizedInts(t *testing.T) {
	s := MustNew(Int("n", 1, 3))
	g := s.Grid(10) // only 3 distinct values
	if len(g) != 3 {
		t.Fatalf("int grid size = %d, want 3", len(g))
	}
}

func TestNeighborStaysValidAndLocal(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(6))
	cfg := s.Default()
	for i := 0; i < 100; i++ {
		nb := s.Neighbor(cfg, 0.05, rng)
		if err := s.Validate(nb); err != nil {
			t.Fatal(err)
		}
		if math.Abs(nb.Float("alpha")-cfg.Float("alpha")) > 0.5 {
			t.Fatalf("neighbor moved too far: %v -> %v", cfg.Float("alpha"), nb.Float("alpha"))
		}
	}
}

func TestClip(t *testing.T) {
	s := testSpace(t)
	dirty := Config{
		"alpha":     5.0,
		"threads":   int64(1000),
		"buffer_mb": 1.0,
		"flush":     "bogus",
		// compress missing
	}
	clean := s.Clip(dirty)
	if err := s.Validate(clean); err != nil {
		t.Fatalf("clip result invalid: %v", err)
	}
	if clean.Float("alpha") != 1 || clean.Int("threads") != 64 {
		t.Fatalf("clip = %v", clean)
	}
	if clean.Str("flush") != "fsync" {
		t.Fatalf("bogus categorical should snap to first level, got %v", clean.Str("flush"))
	}
}

func TestConfigKeyCanonical(t *testing.T) {
	a := Config{"x": 1.0, "y": "b", "z": int64(3)}
	b := Config{"z": int64(3), "y": "b", "x": 1.0}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := a.Clone()
	c["x"] = 2.0
	if a.Key() == c.Key() {
		t.Fatal("different configs share key")
	}
	if !strings.Contains(a.Key(), "x=") {
		t.Fatalf("key format: %q", a.Key())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Config{"x": 1.0}
	b := a.Clone()
	b["x"] = 2.0
	if a.Float("x") != 1.0 {
		t.Fatal("clone aliases")
	}
}

func TestSubspace(t *testing.T) {
	s := MustNew(
		Bool("jit"),
		Float("jit_cost", 0, 1).WithParent("jit", "true"),
		Float("x", 0, 1),
	)
	sub, err := s.Subspace("x", "jit_cost")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim() != 2 {
		t.Fatalf("dim = %d", sub.Dim())
	}
	// jit_cost's parent was dropped, so it must be unconditional now.
	p, _ := sub.Param("jit_cost")
	if p.Parent != "" {
		t.Fatal("orphaned conditional should become unconditional")
	}
	if _, err := s.Subspace("missing"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestKindString(t *testing.T) {
	if KindFloat.String() != "float" || KindCategorical.String() != "categorical" {
		t.Fatal("Kind.String broken")
	}
}

// Property: Decode always produces a config that validates (ignoring
// constraints), for arbitrary inputs.
func TestDecodeValidatesProperty(t *testing.T) {
	s := testSpace(t)
	f := func(raw []float64) bool {
		cfg := s.Decode(raw)
		return s.Validate(cfg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode∘Decode is idempotent on the unit cube for numeric params
// (up to quantization) — decoding then re-encoding then re-decoding gives
// the same config.
func TestEncodeDecodeIdempotentProperty(t *testing.T) {
	s := testSpace(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, s.Dim())
		for i := range x {
			x[i] = rng.Float64()
		}
		c1 := s.Decode(x)
		c2 := s.Decode(s.Encode(c1))
		return c1.Key() == c2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
