package mfidelity

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/bo"
	"autotune/internal/space"
)

// testEval: quadratic objective whose low-fidelity evaluation adds bias and
// noise inversely proportional to fidelity.
func testEval(rng *rand.Rand) EvalFunc {
	return func(cfg space.Config, fid float64) float64 {
		x := cfg.Float("x")
		true_ := (x - 0.7) * (x - 0.7)
		noise := (1 - fid) * 0.05 * rng.NormFloat64()
		bias := (1 - fid) * 0.02
		return true_ + noise + bias
	}
}

func testSpace() *space.Space {
	return space.MustNew(space.Float("x", 0, 1))
}

func TestSuccessiveHalvingFindsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := SuccessiveHalving(testSpace(), testEval(rng), nil, 27, 1.0/9, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best.Float("x")-0.7) > 0.15 {
		t.Fatalf("best x = %v", res.Best.Float("x"))
	}
	if res.Evaluations == 0 || res.TotalCost <= 0 {
		t.Fatal("bookkeeping missing")
	}
}

func TestSHCheaperThanFixedAtSameBreadth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 27
	sh, err := SuccessiveHalving(testSpace(), testEval(rng), nil, n, 1.0/9, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := FixedFidelity(testSpace(), testEval(rng), nil, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sh.TotalCost >= fixed.TotalCost {
		t.Fatalf("SH cost %v should be below fixed cost %v", sh.TotalCost, fixed.TotalCost)
	}
}

func TestSHValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		n           int
		minFid, eta float64
	}{
		{0, 0.1, 3}, // no configs
		{5, 0, 3},   // bad fidelity
		{5, 1.5, 3}, // fidelity > 1
		{5, 0.1, 1}, // eta <= 1
		{5, 0.1, 0.5},
	}
	for _, c := range cases {
		if _, err := SuccessiveHalving(testSpace(), testEval(rng), nil, c.n, c.minFid, c.eta, rng); err == nil {
			t.Fatalf("expected error for %+v", c)
		}
	}
}

func TestSHSingleConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	res, err := SuccessiveHalving(testSpace(), testEval(rng), nil, 1, 0.5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best")
	}
}

func TestHyperbandRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res, err := Hyperband(testSpace(), testEval(rng), nil, 1.0/27, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best.Float("x")-0.7) > 0.2 {
		t.Fatalf("best x = %v", res.Best.Float("x"))
	}
	if res.Evaluations < 10 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
}

func TestHyperbandValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := Hyperband(testSpace(), testEval(rng), nil, 1, 3, rng); err == nil {
		t.Fatal("minFid = 1 should error")
	}
	if _, err := Hyperband(testSpace(), testEval(rng), nil, 0.1, 1, rng); err == nil {
		t.Fatal("eta = 1 should error")
	}
}

func TestFixedFidelityBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := FixedFidelity(testSpace(), testEval(rng), nil, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost != 50 {
		t.Fatalf("cost = %v, want 50", res.TotalCost)
	}
	if math.Abs(res.Best.Float("x")-0.7) > 0.15 {
		t.Fatalf("best x = %v", res.Best.Float("x"))
	}
	if _, err := FixedFidelity(testSpace(), testEval(rng), nil, 0, rng); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestSHBeatsFixedPerCost(t *testing.T) {
	// At (roughly) matched total cost, SH should find an equal-or-better
	// configuration than fixed-fidelity random search, averaged over seeds.
	var shSum, fxSum float64
	seeds := 6
	for i := 0; i < seeds; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		sh, err := SuccessiveHalving(testSpace(), testEval(rng), nil, 27, 1.0/9, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		budget := int(math.Max(1, math.Round(sh.TotalCost)))
		fx, err := FixedFidelity(testSpace(), testEval(rng), nil, budget, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Compare on true objective.
		shTrue := (sh.Best.Float("x") - 0.7) * (sh.Best.Float("x") - 0.7)
		fxTrue := (fx.Best.Float("x") - 0.7) * (fx.Best.Float("x") - 0.7)
		shSum += shTrue
		fxSum += fxTrue
	}
	if shSum > fxSum*1.5 {
		t.Fatalf("SH mean true regret %v much worse than fixed %v", shSum/6, fxSum/6)
	}
}

func TestCostAwareEI(t *testing.T) {
	base := bo.NewEI()
	cheap := CostAwareEI{Base: base, Cost: func() float64 { return 0.1 }}
	pricey := CostAwareEI{Base: base, Cost: func() float64 { return 10 }}
	sCheap := cheap.Score(0, 0.5, 1)
	sPricey := pricey.Score(0, 0.5, 1)
	if !(sCheap > sPricey) {
		t.Fatalf("cheap %v should beat pricey %v", sCheap, sPricey)
	}
	// Nil cost behaves as cost 1.
	neutral := CostAwareEI{Base: base}
	if got, want := neutral.Score(0, 0.5, 1), base.Score(0, 0.5, 1); got != want {
		t.Fatalf("neutral = %v, want %v", got, want)
	}
	// Zero/negative costs are floored, not divide-by-zero.
	degenerate := CostAwareEI{Base: base, Cost: func() float64 { return 0 }}
	if math.IsInf(degenerate.Score(0, 0.5, 1), 0) {
		t.Fatal("zero cost should not produce Inf")
	}
	if neutral.Name() != "cost-ei" {
		t.Fatal("name")
	}
}
