// Package mfidelity implements multi-fidelity tuning (tutorial slides
// 65-66): successive halving and Hyperband over configurations whose
// evaluation cost scales with a fidelity knob (benchmark duration, scale
// factor, replica count), plus a cost-aware acquisition wrapper that
// divides expected improvement by predicted cost.
//
// The caller supplies an evaluation function f(cfg, fidelity) and a cost
// model; the schedulers decide which configurations earn evaluation at
// higher fidelities.
package mfidelity

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autotune/internal/space"
)

// EvalFunc evaluates a configuration at a fidelity in (0, 1]; it returns
// the measured objective (minimized). Low fidelities are cheaper and
// noisier/more biased.
type EvalFunc func(cfg space.Config, fidelity float64) float64

// CostFunc returns the cost of one evaluation at a fidelity. The default
// model is linear: cost = fidelity.
type CostFunc func(fidelity float64) float64

// LinearCost is the default fidelity→cost model.
func LinearCost(fidelity float64) float64 { return fidelity }

// Result summarizes a multi-fidelity run.
type Result struct {
	// Best configuration and its highest-fidelity measured value.
	Best      space.Config
	BestValue float64
	// Evaluations counts f calls; TotalCost sums the cost model over them.
	Evaluations int
	TotalCost   float64
}

// SuccessiveHalving runs the classic SH race: `n` random configurations
// start at fidelity minFid; each rung keeps the best 1/eta fraction and
// multiplies fidelity by eta until reaching 1.0.
func SuccessiveHalving(s *space.Space, f EvalFunc, cost CostFunc, n int, minFid, eta float64, rng *rand.Rand) (Result, error) {
	if n < 1 {
		return Result{}, errors.New("mfidelity: need at least one configuration")
	}
	if eta <= 1 {
		return Result{}, fmt.Errorf("mfidelity: eta must exceed 1, got %v", eta)
	}
	if minFid <= 0 || minFid > 1 {
		return Result{}, fmt.Errorf("mfidelity: minFid must be in (0, 1], got %v", minFid)
	}
	if cost == nil {
		cost = LinearCost
	}
	type entry struct {
		cfg space.Config
		val float64
	}
	alive := make([]entry, 0, n)
	alive = append(alive, entry{cfg: s.Default()})
	for len(alive) < n {
		alive = append(alive, entry{cfg: s.Sample(rng)})
	}
	var res Result
	fid := minFid
	for {
		for i := range alive {
			alive[i].val = f(alive[i].cfg, fid)
			res.Evaluations++
			res.TotalCost += cost(fid)
		}
		sort.Slice(alive, func(i, j int) bool { return alive[i].val < alive[j].val })
		if fid >= 1 || len(alive) == 1 {
			break
		}
		keep := int(math.Ceil(float64(len(alive)) / eta))
		if keep < 1 {
			keep = 1
		}
		alive = alive[:keep]
		fid = math.Min(1, fid*eta)
	}
	res.Best = alive[0].cfg.Clone()
	res.BestValue = alive[0].val
	return res, nil
}

// Hyperband runs several SH brackets trading off breadth (many configs at
// low fidelity) against depth (few configs at high fidelity), following
// Li et al. R is expressed through minFid = 1/R.
func Hyperband(s *space.Space, f EvalFunc, cost CostFunc, minFid, eta float64, rng *rand.Rand) (Result, error) {
	if minFid <= 0 || minFid >= 1 {
		return Result{}, fmt.Errorf("mfidelity: minFid must be in (0, 1), got %v", minFid)
	}
	if eta <= 1 {
		return Result{}, fmt.Errorf("mfidelity: eta must exceed 1, got %v", eta)
	}
	if cost == nil {
		cost = LinearCost
	}
	sMax := int(math.Floor(math.Log(1/minFid) / math.Log(eta)))
	var total Result
	total.BestValue = math.Inf(1)
	for b := sMax; b >= 0; b-- {
		// Bracket b: n configs starting at fidelity eta^-b.
		n := int(math.Ceil(float64(sMax+1) / float64(b+1) * math.Pow(eta, float64(b))))
		if n < 1 {
			n = 1
		}
		startFid := math.Pow(eta, -float64(b))
		r, err := SuccessiveHalving(s, f, cost, n, startFid, eta, rng)
		if err != nil {
			return Result{}, fmt.Errorf("mfidelity: bracket %d: %w", b, err)
		}
		total.Evaluations += r.Evaluations
		total.TotalCost += r.TotalCost
		if r.BestValue < total.BestValue {
			total.Best = r.Best
			total.BestValue = r.BestValue
		}
	}
	return total, nil
}

// FixedFidelity evaluates n random configurations at full fidelity — the
// single-fidelity baseline the tutorial contrasts SH against.
func FixedFidelity(s *space.Space, f EvalFunc, cost CostFunc, n int, rng *rand.Rand) (Result, error) {
	if n < 1 {
		return Result{}, errors.New("mfidelity: need at least one configuration")
	}
	if cost == nil {
		cost = LinearCost
	}
	var res Result
	res.BestValue = math.Inf(1)
	for i := 0; i < n; i++ {
		var cfg space.Config
		if i == 0 {
			cfg = s.Default()
		} else {
			cfg = s.Sample(rng)
		}
		v := f(cfg, 1)
		res.Evaluations++
		res.TotalCost += cost(1)
		if v < res.BestValue {
			res.Best = cfg.Clone()
			res.BestValue = v
		}
	}
	return res, nil
}

// CostAwareEI divides an expected-improvement score by the predicted cost
// raised to CostExponent — the "EI per unit cost" acquisition for
// multi-fidelity and heterogeneous-cost tuning (Do & Zhang 2023). Wrap it
// around any Acquisition-compatible scorer via the Score closure fields.
type CostAwareEI struct {
	// Base scores improvement; it must behave like expected improvement
	// (non-negative, larger is better).
	Base interface {
		Score(mean, std, best float64) float64
	}
	// Cost predicts the evaluation cost at the candidate (must be > 0).
	Cost func() float64
	// CostExponent tempers the division (default 1; BOCA-style uses <1).
	CostExponent float64
}

// Score returns Base.Score / Cost^CostExponent.
func (c CostAwareEI) Score(mean, std, best float64) float64 {
	exp := c.CostExponent
	if exp == 0 {
		exp = 1
	}
	cost := 1.0
	if c.Cost != nil {
		cost = c.Cost()
		if cost <= 0 {
			cost = 1e-9
		}
	}
	return c.Base.Score(mean, std, best) / math.Pow(cost, exp)
}

// Name identifies the acquisition.
func (c CostAwareEI) Name() string { return "cost-ei" }
