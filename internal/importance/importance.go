// Package importance ranks configuration knobs by their influence on the
// objective, the OtterTune-style pipeline from tutorial slide 68: Lasso
// regression (coordinate-descent, with quadratic expansion optional) over
// historical trials, plus random-forest permutation importance as a
// SHAP-style nonlinear alternative. The rankings feed space narrowing:
// tune only the top-k knobs and pin the rest to defaults.
package importance

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autotune/internal/forest"
	"autotune/internal/space"
	"autotune/internal/stats"
)

// ErrNoData is returned when ranking with too few observations.
var ErrNoData = errors.New("importance: not enough observations")

// Ranking pairs parameter names with importance scores, sorted descending.
type Ranking []struct {
	Name  string
	Score float64
}

// Names returns the ranked parameter names.
func (r Ranking) Names() []string {
	out := make([]string, len(r))
	for i, e := range r {
		out[i] = e.Name
	}
	return out
}

// TopK returns the first k names (fewer if the ranking is shorter).
func (r Ranking) TopK(k int) []string {
	if k > len(r) {
		k = len(r)
	}
	return r.Names()[:k]
}

// Lasso fits a linear model with L1 regularization by cyclic coordinate
// descent on standardized features and returns the coefficient magnitudes
// as importances. lambda controls sparsity (typical 0.01-0.1 after
// standardization).
func Lasso(s *space.Space, cfgs []space.Config, ys []float64, lambda float64) (Ranking, error) {
	n := len(cfgs)
	if n < 3 || n != len(ys) {
		return nil, fmt.Errorf("%w: %d configs, %d values", ErrNoData, len(cfgs), len(ys))
	}
	d := s.Dim()
	// Standardize features (unit-cube encodings) and targets.
	cols := make([][]float64, d)
	for j := 0; j < d; j++ {
		cols[j] = make([]float64, n)
	}
	for i, cfg := range cfgs {
		x := s.Encode(cfg)
		for j := 0; j < d; j++ {
			cols[j][i] = x[j]
		}
	}
	for j := 0; j < d; j++ {
		cols[j] = stats.Normalize(cols[j])
	}
	y := stats.Normalize(ys)

	beta := make([]float64, d)
	resid := append([]float64(nil), y...)
	const iters = 200
	for it := 0; it < iters; it++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			// rho = x_j . (resid + x_j * beta_j)
			rho := 0.0
			norm := 0.0
			for i := 0; i < n; i++ {
				rho += cols[j][i] * (resid[i] + cols[j][i]*beta[j])
				norm += cols[j][i] * cols[j][i]
			}
			if norm == 0 {
				continue
			}
			newBeta := softThreshold(rho/float64(n), lambda) / (norm / float64(n))
			delta := newBeta - beta[j]
			if delta != 0 {
				for i := 0; i < n; i++ {
					resid[i] -= cols[j][i] * delta
				}
				beta[j] = newBeta
			}
			if math.Abs(delta) > maxDelta {
				maxDelta = math.Abs(delta)
			}
		}
		if maxDelta < 1e-8 {
			break
		}
	}
	r := make(Ranking, d)
	for j, p := range s.Params() {
		r[j].Name = p.Name
		r[j].Score = math.Abs(beta[j])
	}
	sort.SliceStable(r, func(a, b int) bool { return r[a].Score > r[b].Score })
	return r, nil
}

func softThreshold(x, lambda float64) float64 {
	switch {
	case x > lambda:
		return x - lambda
	case x < -lambda:
		return x + lambda
	default:
		return 0
	}
}

// Permutation ranks knobs with random-forest permutation importance, which
// captures nonlinear and interaction effects that Lasso misses.
func Permutation(s *space.Space, cfgs []space.Config, ys []float64, rng *rand.Rand) (Ranking, error) {
	n := len(cfgs)
	if n < 10 || n != len(ys) {
		return nil, fmt.Errorf("%w: %d configs, %d values", ErrNoData, len(cfgs), len(ys))
	}
	xs := make([][]float64, n)
	for i, cfg := range cfgs {
		xs[i] = s.Encode(cfg)
	}
	f, err := forest.Fit(xs, ys, forest.Options{Trees: 40}, rng)
	if err != nil {
		return nil, fmt.Errorf("importance: %w", err)
	}
	imp := f.PermutationImportance(xs, ys, rng)
	r := make(Ranking, s.Dim())
	for j, p := range s.Params() {
		r[j].Name = p.Name
		r[j].Score = imp[j]
	}
	sort.SliceStable(r, func(a, b int) bool { return r[a].Score > r[b].Score })
	return r, nil
}

// Narrow returns a subspace containing only the named parameters; all other
// parameters are pinned to the base configuration (typically the default)
// by the returned completion function, which lifts a narrow config back to
// a full config.
func Narrow(s *space.Space, keep []string, base space.Config) (*space.Space, func(space.Config) space.Config, error) {
	sub, err := s.Subspace(keep...)
	if err != nil {
		return nil, nil, err
	}
	pinned := base.Clone()
	complete := func(narrow space.Config) space.Config {
		full := pinned.Clone()
		for k, v := range narrow {
			full[k] = v
		}
		return s.Clip(full)
	}
	return sub, complete, nil
}
