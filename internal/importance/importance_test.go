package importance

import (
	"errors"
	"math/rand"
	"testing"

	"autotune/internal/space"
)

func impSpace() *space.Space {
	return space.MustNew(
		space.Float("big", 0, 1),
		space.Float("medium", 0, 1),
		space.Float("tiny", 0, 1),
		space.Float("noise1", 0, 1),
		space.Float("noise2", 0, 1),
	)
}

func impData(n int, seed int64) ([]space.Config, []float64) {
	s := impSpace()
	rng := rand.New(rand.NewSource(seed))
	cfgs := make([]space.Config, n)
	ys := make([]float64, n)
	for i := range cfgs {
		cfgs[i] = s.Sample(rng)
		ys[i] = 10*cfgs[i].Float("big") + 3*cfgs[i].Float("medium") +
			0.5*cfgs[i].Float("tiny") + 0.05*rng.NormFloat64()
	}
	return cfgs, ys
}

func TestLassoRanksLinearSignal(t *testing.T) {
	cfgs, ys := impData(200, 1)
	r, err := Lasso(impSpace(), cfgs, ys, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Name != "big" || r[1].Name != "medium" {
		t.Fatalf("ranking = %v", r.Names())
	}
	// Sparsity: pure-noise knobs should have (near) zero coefficients.
	for _, e := range r {
		if (e.Name == "noise1" || e.Name == "noise2") && e.Score > 0.05 {
			t.Fatalf("noise knob %s score %v", e.Name, e.Score)
		}
	}
}

func TestLassoSparsityIncreasesWithLambda(t *testing.T) {
	cfgs, ys := impData(150, 2)
	nonZero := func(lambda float64) int {
		r, err := Lasso(impSpace(), cfgs, ys, lambda)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range r {
			if e.Score > 1e-9 {
				n++
			}
		}
		return n
	}
	if !(nonZero(0.5) <= nonZero(0.01)) {
		t.Fatal("higher lambda should zero out more coefficients")
	}
}

func TestLassoErrors(t *testing.T) {
	s := impSpace()
	if _, err := Lasso(s, nil, nil, 0.1); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	cfgs, _ := impData(10, 3)
	if _, err := Lasso(s, cfgs, []float64{1, 2}, 0.1); !errors.Is(err, ErrNoData) {
		t.Fatal("length mismatch should error")
	}
}

func TestPermutationRanksNonlinearSignal(t *testing.T) {
	s := impSpace()
	rng := rand.New(rand.NewSource(4))
	n := 300
	cfgs := make([]space.Config, n)
	ys := make([]float64, n)
	for i := range cfgs {
		cfgs[i] = s.Sample(rng)
		b := cfgs[i].Float("big")
		// Nonlinear: a sharp valley — Lasso would underrate this.
		ys[i] = (b-0.5)*(b-0.5)*20 + 0.5*cfgs[i].Float("medium")
	}
	r, err := Permutation(s, cfgs, ys, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Name != "big" {
		t.Fatalf("ranking = %v", r.Names())
	}
}

func TestPermutationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := Permutation(impSpace(), nil, nil, rng); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
}

func TestRankingHelpers(t *testing.T) {
	r := Ranking{
		{Name: "a", Score: 3},
		{Name: "b", Score: 2},
		{Name: "c", Score: 1},
	}
	if got := r.TopK(2); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("TopK = %v", got)
	}
	if got := r.TopK(10); len(got) != 3 {
		t.Fatalf("TopK overflow = %v", got)
	}
}

func TestNarrow(t *testing.T) {
	s := impSpace()
	base := s.Default()
	base["noise1"] = 0.9
	sub, complete, err := Narrow(s, []string{"big", "medium"}, base)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim() != 2 {
		t.Fatalf("sub dim = %d", sub.Dim())
	}
	narrow := space.Config{"big": 0.1, "medium": 0.2}
	full := complete(narrow)
	if full.Float("big") != 0.1 || full.Float("medium") != 0.2 {
		t.Fatalf("narrow values lost: %v", full)
	}
	if full.Float("noise1") != 0.9 {
		t.Fatalf("pinned value lost: %v", full)
	}
	if err := s.Validate(full); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Narrow(s, []string{"missing"}, base); err == nil {
		t.Fatal("unknown knob should error")
	}
}

func TestNarrowedTuningMatchesFull(t *testing.T) {
	// Tuning only the important knobs should achieve (near) the quality of
	// tuning everything, with a smaller space. We verify by exhaustive
	// random search on both.
	s := impSpace()
	obj := func(c space.Config) float64 {
		return 10*c.Float("big") + 3*c.Float("medium") + 0.5*c.Float("tiny")
	}
	cfgs, ys := impData(200, 6)
	r, err := Lasso(s, cfgs, ys, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sub, complete, err := Narrow(s, r.TopK(2), s.Default())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	bestNarrow := 1e18
	for i := 0; i < 60; i++ {
		v := obj(complete(sub.Sample(rng)))
		if v < bestNarrow {
			bestNarrow = v
		}
	}
	bestFull := 1e18
	for i := 0; i < 60; i++ {
		v := obj(s.Sample(rng))
		if v < bestFull {
			bestFull = v
		}
	}
	// The narrow search fixes tiny at its default (0.5 -> +0.25), but the
	// dominant terms should still make it competitive.
	if bestNarrow > bestFull+1.0 {
		t.Fatalf("narrow best %v much worse than full best %v", bestNarrow, bestFull)
	}
}
