// Package manual is the framework's stand-in for LLM-based knob discovery
// (DB-BERT, GPTuner — tutorial slides 63-64): those systems read database
// manuals and extract (a) which knobs matter and (b) sensible value ranges.
// With no network or ML models available, this package ships a small
// built-in documentation corpus for the simulated DBMS's knobs and a
// keyword-based extractor that produces the same two artifacts: an
// importance prior over knobs and biased sampling hints ("set the buffer
// pool to 50-75% of physical memory"). The outputs plug into search-space
// narrowing (internal/importance) and warm-started sampling exactly the
// way the LLM-derived hints do in the papers.
package manual

import (
	"sort"
	"strings"

	"autotune/internal/simsys"
	"autotune/internal/space"
)

// Doc is one manual entry for a knob.
type Doc struct {
	Knob string
	Text string
}

// Hint is the structured advice extracted from a Doc.
type Hint struct {
	Knob string
	// Score is the extracted importance prior (higher = likelier to
	// matter), derived from emphasis keywords in the documentation.
	Score float64
	// RangeLow/RangeHigh, when non-zero, bias sampling toward the
	// documented sweet spot, expressed as a fraction of a resource
	// (interpreted by ApplyHints).
	RAMFractionLow, RAMFractionHigh float64
	// Recommended holds a documented categorical/boolean recommendation
	// ("" = none).
	Recommended string
}

// DBMSCorpus returns the built-in manual excerpts for the simulated DBMS.
// The texts paraphrase real MySQL/PostgreSQL documentation for the
// corresponding knobs.
func DBMSCorpus() []Doc {
	return []Doc{
		{"buffer_pool_mb", "The buffer pool is the single most important memory area for performance. On a dedicated server, set it to 50 to 75 percent of physical memory. A larger buffer pool dramatically reduces disk I/O for most workloads."},
		{"log_file_mb", "Larger redo log files reduce checkpoint frequency and significantly improve write-heavy performance, at the cost of longer crash recovery."},
		{"io_threads", "The number of background I/O threads critically affects throughput on fast storage; values matching or exceeding the device queue depth are recommended for SSDs."},
		{"worker_threads", "Size the worker pool to the CPU core count; substantially oversubscribing cores causes context-switch overhead and degrades performance."},
		{"query_cache_mb", "The query cache can improve read-only workloads but is invalidated on every write; it is disabled by default and not recommended for mixed workloads."},
		{"checkpoint_secs", "Frequent checkpoints smooth crash recovery but add significant write amplification under update-heavy load."},
		{"flush_method", "O_DIRECT avoids double buffering and is strongly recommended when the buffer pool is large; fsync is the conservative default."},
		{"compression", "Page compression trades CPU for effective cache capacity; beneficial when the working set exceeds memory."},
		{"join_buffer_kb", "Per-connection join buffer; rarely needs tuning."},
		{"sort_buffer_kb", "Per-connection sort buffer; oversizing wastes memory because every connection allocates one."},
		{"tmp_table_mb", "Maximum in-memory temporary table size; larger values avoid disk spills for big sorts."},
		{"max_connections", "Set above the expected client count; exhausting connections queues requests."},
		{"prefetch", "Read-ahead significantly accelerates sequential scans and is recommended for analytic workloads."},
		{"wal_buffer_kb", "A larger write-ahead-log buffer lets concurrent transactions share flushes (group commit), which is critical for update-heavy performance."},
		{"lock_wait_ms", "How long a transaction waits for a row lock before aborting; mostly affects error behaviour, not throughput."},
		{"page_kb", "Smaller pages can reduce I/O amplification for point lookups; the default suits most workloads."},
		{"stats_sample", "Statistics sampling rate for the planner; minimal performance impact."},
		{"vacuum_cost_limit", "Background maintenance pacing; defaults are adequate for most systems."},
		{"jit", "Just-in-time compilation significantly speeds up expression-heavy analytic queries; it is recommended for long scans."},
		{"jit_above_cost_k", "Cost threshold above which queries are JIT-compiled."},
		{"net_buffer_kb", "Per-connection network buffer; rarely needs tuning."},
	}
}

// emphasis maps documentation keywords to importance weight, mimicking the
// salience signals DB-BERT mines from manuals and forums.
var emphasis = []struct {
	word   string
	weight float64
}{
	{"most important", 5},
	{"critical", 3},
	{"significantly", 2.5},
	{"dramatically", 2.5},
	{"strongly recommended", 2},
	{"recommended", 1.5},
	{"improve", 1},
	{"performance", 1},
	{"rarely needs tuning", -3},
	{"minimal performance impact", -3},
	{"adequate for most", -2},
	{"default suits", -2},
}

// Extract scores every doc and parses range/recommendation hints.
func Extract(corpus []Doc) []Hint {
	hints := make([]Hint, 0, len(corpus))
	for _, d := range corpus {
		text := strings.ToLower(d.Text)
		h := Hint{Knob: d.Knob}
		for _, e := range emphasis {
			if strings.Contains(text, e.word) {
				h.Score += e.weight
			}
		}
		// Range extraction: "50 to 75 percent of physical memory".
		if strings.Contains(text, "percent of physical memory") {
			h.RAMFractionLow, h.RAMFractionHigh = 0.5, 0.75
		}
		// Categorical recommendation: "X ... is strongly recommended".
		if d.Knob == "flush_method" && strings.Contains(text, "o_direct") {
			h.Recommended = "O_DIRECT"
		}
		if h.Score < 0 {
			h.Score = 0
		}
		hints = append(hints, h)
	}
	sort.SliceStable(hints, func(a, b int) bool { return hints[a].Score > hints[b].Score })
	return hints
}

// TopKnobs returns the k highest-scoring knob names.
func TopKnobs(hints []Hint, k int) []string {
	if k > len(hints) {
		k = len(hints)
	}
	out := make([]string, 0, k)
	for _, h := range hints[:k] {
		out = append(out, h.Knob)
	}
	return out
}

// ApplyHints produces a configuration seeded from the manual's advice for
// the given host: documented RAM fractions and recommendations are applied
// on top of the defaults — the GPTuner-style "coarse" stage that gives the
// optimizer a knowledgeable starting point.
func ApplyHints(d *simsys.DBMS, hints []Hint) space.Config {
	cfg := d.Space().Default()
	for _, h := range hints {
		p, ok := d.Space().Param(h.Knob)
		if !ok {
			continue
		}
		if h.RAMFractionLow > 0 && p.Kind == space.KindInt {
			mid := (h.RAMFractionLow + h.RAMFractionHigh) / 2
			cfg[h.Knob] = int64(d.Spec.RAMMB * mid)
		}
		if h.Recommended != "" && p.Kind == space.KindCategorical {
			cfg[h.Knob] = h.Recommended
		}
	}
	return d.Space().Clip(cfg)
}
