package manual

import (
	"testing"

	"autotune/internal/simsys"
	"autotune/internal/workload"
)

func TestCorpusCoversSpace(t *testing.T) {
	d := simsys.NewDBMS(simsys.MediumVM())
	docs := DBMSCorpus()
	documented := map[string]bool{}
	for _, doc := range docs {
		if _, ok := d.Space().Param(doc.Knob); !ok {
			t.Fatalf("doc for unknown knob %q", doc.Knob)
		}
		if documented[doc.Knob] {
			t.Fatalf("duplicate doc for %q", doc.Knob)
		}
		documented[doc.Knob] = true
		if doc.Text == "" {
			t.Fatalf("empty doc for %q", doc.Knob)
		}
	}
	for _, p := range d.Space().Params() {
		if !documented[p.Name] {
			t.Fatalf("knob %q has no manual entry", p.Name)
		}
	}
}

func TestExtractRanksEmphasizedKnobs(t *testing.T) {
	hints := Extract(DBMSCorpus())
	if hints[0].Knob != "buffer_pool_mb" {
		t.Fatalf("top knob = %q, want buffer_pool_mb", hints[0].Knob)
	}
	top := map[string]bool{}
	for _, k := range TopKnobs(hints, 8) {
		top[k] = true
	}
	for _, want := range []string{"buffer_pool_mb", "wal_buffer_kb", "io_threads", "flush_method"} {
		if !top[want] {
			t.Fatalf("%q missing from manual-derived top knobs: %v", want, TopKnobs(hints, 8))
		}
	}
	// Explicitly-unimportant knobs score zero.
	for _, h := range hints {
		if h.Knob == "join_buffer_kb" && h.Score != 0 {
			t.Fatalf("join_buffer_kb score = %v, want 0", h.Score)
		}
	}
}

func TestExtractAgreesWithGroundTruth(t *testing.T) {
	// The manual-derived top knobs should overlap the model's ground truth
	// for a write-heavy workload — the DB-BERT claim, reproduced.
	d := simsys.NewDBMS(simsys.MediumVM())
	truth := d.ImportantKnobs(workload.TPCC())
	top := map[string]bool{}
	for _, k := range TopKnobs(Extract(DBMSCorpus()), 7) {
		top[k] = true
	}
	hits := 0
	for _, k := range truth {
		if top[k] {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("manual hints recovered only %d/%d ground-truth knobs", hits, len(truth))
	}
}

func TestApplyHintsSeedsConfig(t *testing.T) {
	d := simsys.NewDBMS(simsys.MediumVM())
	hints := Extract(DBMSCorpus())
	cfg := ApplyHints(d, hints)
	if err := d.Space().Validate(cfg); err != nil {
		t.Fatal(err)
	}
	// Buffer pool should land in the documented 50-75% of RAM band
	// (clipped to the knob's domain).
	bp := float64(cfg.Int("buffer_pool_mb"))
	if bp < d.Spec.RAMMB*0.45 && bp < 16384 {
		t.Fatalf("buffer pool = %v, want documented fraction of %v RAM", bp, d.Spec.RAMMB)
	}
	if cfg.Str("flush_method") != "O_DIRECT" {
		t.Fatalf("flush = %q, want documented O_DIRECT", cfg.Str("flush_method"))
	}
	// The seeded config must beat the shipped defaults.
	wl := workload.TPCC()
	def, err := d.Run(d.Space().Default(), wl, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := d.Run(cfg, wl, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(seeded.LatencyMS < def.LatencyMS) {
		t.Fatalf("manual-seeded latency %v should beat default %v", seeded.LatencyMS, def.LatencyMS)
	}
}

func TestTopKnobsClamps(t *testing.T) {
	hints := Extract(DBMSCorpus())
	if len(TopKnobs(hints, 1000)) != len(hints) {
		t.Fatal("overflow clamp failed")
	}
}
