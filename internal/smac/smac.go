// Package smac implements SMAC-style sequential model-based optimization
// (Hutter, Hoos, Leyton-Brown 2010): a random-forest surrogate whose
// across-tree spread provides the uncertainty estimate, combined with
// expected improvement and a candidate pool mixing random samples with
// neighbourhoods of the incumbent. The tree surrogate handles categorical
// and conditional parameters natively, which is why SMAC is the tutorial's
// recommended model for discrete/hybrid spaces (slide 51).
package smac

import (
	"math"
	"math/rand"

	"autotune/internal/bo"
	"autotune/internal/forest"
	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// Options configures SMAC.
type Options struct {
	// Acq is the acquisition function (default EI).
	Acq bo.Acquisition
	// Trees is the forest size (default 30).
	Trees int
	// InitSamples is the random warm-up count (default 5).
	InitSamples int
	// Candidates is the random candidate pool size (default 512).
	Candidates int
	// LocalCandidates is the number of incumbent-neighbourhood candidates
	// added to the pool (default 64).
	LocalCandidates int
	// MinVariance floors the forest's uncertainty so EI never collapses
	// to pure exploitation (default 1e-8).
	MinVariance float64
	// RandomInterleave is the probability that a suggestion is a pure
	// random sample instead of the acquisition maximizer (default 0.3).
	// Interleaving counters the forest's tendency to report near-zero
	// uncertainty in unexplored regions (trees extrapolate flat), which
	// would otherwise make EI purely exploitative — the original SMAC
	// alternates model-based and random configurations for the same
	// reason.
	RandomInterleave float64
	// DeepHistory is the history size past which refits amortize: below
	// it every dirty Suggest refits (the original behavior); past it the
	// forest refits only once per max(8, n/16) new observations, serving
	// the slightly stale model in between. Per-suggest maintenance then
	// stays O(trees · log n) instead of O(trees · n log n). Default 512.
	DeepHistory int
}

func (o Options) withDefaults() Options {
	if o.Acq == nil {
		o.Acq = bo.NewEI()
	}
	if o.Trees <= 0 {
		o.Trees = 30
	}
	if o.InitSamples <= 0 {
		o.InitSamples = 5
	}
	if o.Candidates <= 0 {
		o.Candidates = 512
	}
	if o.LocalCandidates <= 0 {
		o.LocalCandidates = 64
	}
	if o.MinVariance <= 0 {
		o.MinVariance = 1e-8
	}
	if o.RandomInterleave == 0 {
		o.RandomInterleave = 0.3
	}
	if o.RandomInterleave < 0 {
		o.RandomInterleave = 0
	}
	if o.DeepHistory <= 0 {
		o.DeepHistory = 512
	}
	return o
}

// SMAC is the random-forest-based optimizer. It implements
// optimizer.Optimizer and optimizer.BatchSuggester.
type SMAC struct {
	optimizer.Recorder
	space *space.Space
	rng   *rand.Rand
	opts  Options

	model  *forest.Forest
	dirty  bool
	fitted int // history size the forest currently reflects
	refits int
	// encBuf is the reused encoding buffer for candidate scoring; the
	// forest reads it during Predict and retains nothing.
	encBuf []float64
}

// Stats reports surrogate maintenance counters: how many forest rebuilds
// have run and how much history the current forest reflects (past
// DeepHistory, Fitted lags N by up to the refit cadence).
type Stats struct {
	Refits int
	Fitted int
}

// Stats returns the current maintenance counters.
func (s *SMAC) Stats() Stats { return Stats{Refits: s.refits, Fitted: s.fitted} }

// New returns a SMAC optimizer with default options.
func New(s *space.Space, rng *rand.Rand) *SMAC {
	return NewWith(s, rng, Options{})
}

// NewWith returns a SMAC optimizer with explicit options.
func NewWith(s *space.Space, rng *rand.Rand, opts Options) *SMAC {
	return &SMAC{space: s, rng: rng, opts: opts.withDefaults()}
}

// Name implements optimizer.Optimizer.
func (s *SMAC) Name() string { return "smac" }

// Observe implements optimizer.Optimizer.
func (s *SMAC) Observe(cfg space.Config, value float64) error {
	if err := s.Recorder.Observe(cfg, value); err != nil {
		return err
	}
	s.dirty = true
	return nil
}

func (s *SMAC) refit() error {
	hist := s.History()
	xs := make([][]float64, len(hist))
	ys := make([]float64, len(hist))
	for i, obs := range hist {
		xs[i] = s.space.Encode(obs.Config)
		ys[i] = obs.Value
	}
	ys = clampInvalid(ys)
	m, err := forest.Fit(xs, ys, forest.Options{Trees: s.opts.Trees}, s.rng)
	if err != nil {
		return err
	}
	s.model = m
	s.dirty = false
	s.fitted = len(hist)
	s.refits++
	return nil
}

// ensureModel refits if the model is missing or stale beyond the cadence.
// Below DeepHistory every dirty call refits (the exact original behavior);
// past it refits amortize to once per max(8, n/16) observations, and the
// stale-but-recent forest serves suggestions in between.
func (s *SMAC) ensureModel() error {
	if s.model == nil {
		return s.refit()
	}
	if !s.dirty {
		return nil
	}
	n := s.N()
	if n <= s.opts.DeepHistory {
		return s.refit()
	}
	every := n / 16
	if every < 8 {
		every = 8
	}
	if n-s.fitted >= every {
		return s.refit()
	}
	return nil
}

// Suggest implements optimizer.Optimizer.
func (s *SMAC) Suggest() (space.Config, error) {
	n := s.N()
	if n == 0 {
		return s.space.Default(), nil
	}
	if n < s.opts.InitSamples {
		return s.space.Sample(s.rng), nil
	}
	if s.rng.Float64() < s.opts.RandomInterleave {
		return s.space.Sample(s.rng), nil
	}
	if err := s.ensureModel(); err != nil {
		return s.space.Sample(s.rng), nil
	}
	return s.pick(), nil
}

// predictCfg scores cfg through the reused encoding buffer, avoiding one
// vector allocation per candidate.
func (s *SMAC) predictCfg(cfg space.Config) (mean, variance float64) {
	if cap(s.encBuf) < s.space.Dim() {
		s.encBuf = make([]float64, s.space.Dim())
	}
	s.encBuf = s.encBuf[:s.space.Dim()]
	s.space.EncodeInto(cfg, s.encBuf)
	return s.model.Predict(s.encBuf)
}

// pick maximizes the acquisition over random + incumbent-local candidates.
func (s *SMAC) pick() space.Config {
	incumbent, best, _ := s.Best()
	seen := make(map[string]bool, s.N())
	for _, obs := range s.History() {
		seen[obs.Config.Key()] = true
	}
	var top space.Config
	topScore := math.Inf(-1)
	var topAny space.Config
	topAnyScore := math.Inf(-1)
	consider := func(cfg space.Config) {
		mu, v := s.predictCfg(cfg)
		if v < s.opts.MinVariance {
			v = s.opts.MinVariance
		}
		sc := s.opts.Acq.Score(mu, math.Sqrt(v), best)
		if sc > topAnyScore {
			topAny, topAnyScore = cfg, sc
		}
		if sc > topScore && !seen[cfg.Key()] {
			top, topScore = cfg, sc
		}
	}
	for i := 0; i < s.opts.Candidates; i++ {
		consider(s.space.Sample(s.rng))
	}
	if incumbent != nil {
		for i := 0; i < s.opts.LocalCandidates; i++ {
			consider(s.space.Neighbor(incumbent, 0.05, s.rng))
		}
	}
	if top == nil {
		top = topAny
	}
	if top == nil {
		top = s.space.Sample(s.rng)
	}
	return top
}

// SuggestN implements optimizer.BatchSuggester: it picks the top-n distinct
// candidates by acquisition score in one scoring pass.
func (s *SMAC) SuggestN(n int) ([]space.Config, error) {
	if n <= 1 || s.N() < s.opts.InitSamples {
		out := make([]space.Config, 0, n)
		for i := 0; i < n; i++ {
			cfg, err := s.Suggest()
			if err != nil {
				return nil, err
			}
			out = append(out, cfg)
		}
		return out, nil
	}
	if err := s.ensureModel(); err != nil {
		return s.space.SampleN(s.rng, n), nil
	}
	_, best, _ := s.Best()
	type scored struct {
		cfg   space.Config
		score float64
	}
	cands := make([]scored, 0, s.opts.Candidates)
	for i := 0; i < s.opts.Candidates; i++ {
		cfg := s.space.Sample(s.rng)
		mu, v := s.predictCfg(cfg)
		if v < s.opts.MinVariance {
			v = s.opts.MinVariance
		}
		cands = append(cands, scored{cfg, s.opts.Acq.Score(mu, math.Sqrt(v), best)})
	}
	out := make([]space.Config, 0, n)
	used := map[string]bool{}
	for len(out) < n {
		bi, bs := -1, math.Inf(-1)
		for i, c := range cands {
			if used[c.cfg.Key()] {
				continue
			}
			if c.score > bs {
				bi, bs = i, c.score
			}
		}
		if bi < 0 {
			out = append(out, s.space.Sample(s.rng))
			continue
		}
		used[cands[bi].cfg.Key()] = true
		out = append(out, cands[bi].cfg)
	}
	return out, nil
}

// Importance returns per-parameter permutation importances from the current
// forest, aligned with the space's parameter order. It refits if needed and
// returns nil when no model can be built.
func (s *SMAC) Importance() []float64 {
	if s.dirty || s.model == nil {
		if err := s.refit(); err != nil {
			return nil
		}
	}
	hist := s.History()
	xs := make([][]float64, len(hist))
	ys := make([]float64, len(hist))
	for i, obs := range hist {
		xs[i] = s.space.Encode(obs.Config)
		ys[i] = obs.Value
	}
	ys = clampInvalid(ys)
	return s.model.PermutationImportance(xs, ys, s.rng)
}

// clampInvalid mirrors bo.clampInvalid for crash values; duplicated locally
// to keep the packages decoupled beyond the Acquisition interface.
func clampInvalid(ys []float64) []float64 {
	worst, best := math.Inf(-1), math.Inf(1)
	for _, y := range ys {
		if !math.IsInf(y, 0) && !math.IsNaN(y) {
			if y > worst {
				worst = y
			}
			if y < best {
				best = y
			}
		}
	}
	if math.IsInf(worst, -1) {
		out := make([]float64, len(ys))
		for i := range out {
			out[i] = 1
		}
		return out
	}
	spread := worst - best
	if spread <= 0 {
		spread = math.Abs(worst)
		if spread == 0 {
			spread = 1
		}
	}
	penalty := worst + 2*spread
	out := make([]float64, len(ys))
	for i, y := range ys {
		if math.IsInf(y, 0) || math.IsNaN(y) {
			out[i] = penalty
		} else {
			out[i] = y
		}
	}
	return out
}
