package smac

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/space"
	"autotune/internal/testfunc"
)

func TestSMACOnSphere(t *testing.T) {
	f := testfunc.Sphere(3)
	s := New(f.Space, rand.New(rand.NewSource(1)))
	_, val, err := optimizer.Run(s, f.Eval, 60)
	if err != nil {
		t.Fatal(err)
	}
	if val > 3 {
		t.Fatalf("SMAC best = %v", val)
	}
	if s.Name() != "smac" {
		t.Fatal("name")
	}
}

func TestSMACBeatsRandomOnHybridSpace(t *testing.T) {
	// Hybrid space where a categorical dominates: trees shine here.
	sp := space.MustNew(
		space.Categorical("flush", "fsync", "littlesync", "nosync", "O_DSYNC", "O_DIRECT"),
		space.Float("buf", 0, 1),
		space.Int("threads", 1, 32),
	)
	f := func(c space.Config) float64 {
		base := map[string]float64{
			"fsync": 3, "littlesync": 2.5, "nosync": 0.5, "O_DSYNC": 2, "O_DIRECT": 1,
		}[c.Str("flush")]
		return base + math.Abs(c.Float("buf")-0.7) + math.Abs(float64(c.Int("threads"))-20)/32
	}
	budget := 40
	wins := 0
	seeds := 6
	for i := 0; i < seeds; i++ {
		sm := New(sp, rand.New(rand.NewSource(int64(10+i))))
		rd := optimizer.NewRandom(sp, rand.New(rand.NewSource(int64(10+i))))
		_, sv, err := optimizer.Run(sm, f, budget)
		if err != nil {
			t.Fatal(err)
		}
		_, rv, err := optimizer.Run(rd, f, budget)
		if err != nil {
			t.Fatal(err)
		}
		if sv <= rv {
			wins++
		}
	}
	if wins < seeds/2 {
		t.Fatalf("SMAC won only %d/%d", wins, seeds)
	}
}

func TestSMACFindsBestCategory(t *testing.T) {
	sp := space.MustNew(space.Categorical("c", "a", "b", "good", "d"))
	f := func(cfg space.Config) float64 {
		if cfg.Str("c") == "good" {
			return 0
		}
		return 1
	}
	s := New(sp, rand.New(rand.NewSource(2)))
	cfg, val, err := optimizer.Run(s, f, 15)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Str("c") != "good" || val != 0 {
		t.Fatalf("best = %v (%v)", cfg, val)
	}
}

func TestSMACSuggestNDistinct(t *testing.T) {
	f := testfunc.Branin()
	s := New(f.Space, rand.New(rand.NewSource(3)))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 8; i++ {
		cfg := f.Space.Sample(rng)
		s.Observe(cfg, f.Eval(cfg))
	}
	batch, err := s.SuggestN(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 5 {
		t.Fatalf("batch = %d", len(batch))
	}
	keys := map[string]bool{}
	for _, c := range batch {
		keys[c.Key()] = true
	}
	if len(keys) != 5 {
		t.Fatalf("distinct = %d of 5", len(keys))
	}
}

func TestSMACImportanceRanksKnobs(t *testing.T) {
	sp := space.MustNew(
		space.Float("important", 0, 1),
		space.Float("minor", 0, 1),
		space.Float("noise", 0, 1),
	)
	f := func(c space.Config) float64 {
		return 10*c.Float("important") + 0.5*c.Float("minor")
	}
	s := New(sp, rand.New(rand.NewSource(5)))
	if s.Importance() != nil {
		t.Fatal("importance with no data should be nil")
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 150; i++ {
		cfg := sp.Sample(rng)
		s.Observe(cfg, f(cfg))
	}
	imp := s.Importance()
	if len(imp) != 3 {
		t.Fatalf("importance len = %d", len(imp))
	}
	if !(imp[0] > imp[1] && imp[0] > imp[2]) {
		t.Fatalf("importances = %v", imp)
	}
}

func TestSMACHandlesCrashes(t *testing.T) {
	sp := space.MustNew(space.Float("x", 0, 1))
	f := func(c space.Config) float64 {
		if c.Float("x") > 0.6 {
			return math.Inf(1)
		}
		return math.Abs(c.Float("x") - 0.4)
	}
	s := New(sp, rand.New(rand.NewSource(7)))
	cfg, val, err := optimizer.Run(s, f, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(val, 0) || math.Abs(cfg.Float("x")-0.4) > 0.2 {
		t.Fatalf("best = %v (%v)", cfg, val)
	}
}

func TestSMACFirstSuggestionDefault(t *testing.T) {
	sp := space.MustNew(space.Float("x", 0, 1).WithDefault(0.9))
	s := New(sp, rand.New(rand.NewSource(8)))
	cfg, err := s.Suggest()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Float("x") != 0.9 {
		t.Fatal("first suggestion should be the default config")
	}
}

// TestSMACDeepHistoryAmortizesRefits drives SMAC past the DeepHistory
// threshold and requires the refit count to stay well below the suggest
// count: maintenance amortizes to once per max(8, n/16) observations while
// suggestions keep flowing from the recent forest.
func TestSMACDeepHistoryAmortizesRefits(t *testing.T) {
	f := testfunc.Branin()
	s := NewWith(f.Space, rand.New(rand.NewSource(4)), Options{
		DeepHistory: 32, Candidates: 64, RandomInterleave: -1,
	})
	steps := 200
	for i := 0; i < steps; i++ {
		cfg, err := s.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(cfg, f.Eval(cfg)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Refits == 0 {
		t.Fatal("forest never fit")
	}
	// 200 observations with cadence >= 8 past n=32: ~32 refits up front
	// plus ~21 amortized, far below one per step.
	if st.Refits > steps/2 {
		t.Fatalf("refits not amortized: %d refits for %d suggests", st.Refits, steps)
	}
	if st.Fitted < s.N()-s.N()/8 {
		t.Fatalf("served forest too stale: fitted %d of %d", st.Fitted, s.N())
	}
	// Below the threshold the original refit-per-dirty-suggest behavior
	// must be preserved exactly.
	dense := NewWith(f.Space, rand.New(rand.NewSource(4)), Options{
		DeepHistory: 10000, Candidates: 64, RandomInterleave: -1, InitSamples: 5,
	})
	for i := 0; i < 30; i++ {
		cfg, err := dense.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		if err := dense.Observe(cfg, f.Eval(cfg)); err != nil {
			t.Fatal(err)
		}
	}
	// One more Suggest absorbs the final pending observation.
	if _, err := dense.Suggest(); err != nil {
		t.Fatal(err)
	}
	if got := dense.Stats(); got.Fitted != dense.N() {
		t.Fatalf("below threshold the forest must track history exactly: fitted %d of %d", got.Fitted, dense.N())
	}
}
