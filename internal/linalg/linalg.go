// Package linalg implements the small dense linear-algebra kernel the
// autotuning framework needs: row-major matrices, Cholesky factorization
// (with an O(n²) rank-1 row update for growing SPD systems), triangular
// solves, symmetric eigendecomposition (cyclic Jacobi), and least-squares
// via normal equations. Matrices here are tens to a few hundreds of rows
// (GP training sets, CMA-ES covariances); the hot loops — Mul, Cholesky,
// the triangular solves, Dot — hoist row slices and block for cache
// locality because they sit on the per-suggestion path of the Bayesian
// optimizer, but there is no SIMD or cgo.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// ErrSingular is returned by solves on singular systems.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dims %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// mulBlock is the tile edge for the blocked ikj product: a 64×64 float64
// tile is 32 KiB, so the b-tile and out-tile being streamed stay resident
// in L1/L2 while a full k-panel is applied.
const mulBlock = 64

// Mul returns the matrix product a*b. The loop nest is ikj-ordered (the
// innermost loop streams a row of b and a row of out sequentially) and
// tiled over k and j so large products reuse cache lines instead of
// striding; zero entries of a are skipped, which one-hot encodings hit
// often.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul dims %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for kk := 0; kk < a.Cols; kk += mulBlock {
		kend := min(kk+mulBlock, a.Cols)
		for jj := 0; jj < b.Cols; jj += mulBlock {
			jend := min(jj+mulBlock, b.Cols)
			for i := 0; i < a.Rows; i++ {
				arow := a.Row(i)[kk:kend]
				orow := out.Row(i)[jj:jend]
				for k, av := range arow {
					if av == 0 {
						continue
					}
					brow := b.Row(kk + k)[jj:jend]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	m.MulVecInto(x, out)
	return out
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMat returns a+b as a new matrix.
func AddMat(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: add dims mismatch")
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Dot returns the inner product of two equal-length vectors. Four partial
// sums let the multiplies pipeline; the b reslice makes the bounds of both
// operands known to the compiler so the inner loop carries no checks.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: axpy length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Cholesky computes the lower-triangular factor L with A = L Lᵀ. A must be
// square and symmetric positive definite; only the lower triangle of A is
// read. Returns ErrNotPositiveDefinite on failure.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of %dx%d: not square", a.Rows, a.Cols)
	}
	l := NewMatrix(a.Rows, a.Rows)
	if err := CholeskyInto(a, l, 0); err != nil {
		return nil, err
	}
	return l, nil
}

// CholUpdateRow extends the lower-triangular Cholesky factor L of an n×n
// SPD matrix A to the factor of the bordered (n+1)×(n+1) matrix
//
//	[ A   k ]
//	[ kᵀ  d ]
//
// in O(n²): it solves L c = k by forward substitution, appends the row
// [cᵀ, √(d − c·c)], and copies L into a freshly allocated factor. This is
// how a Gaussian process absorbs one new observation without the O(n³)
// refactorization. Returns ErrNotPositiveDefinite when the bordered matrix
// is not numerically SPD (d − c·c ≤ 0); callers should then fall back to a
// full factorization with jitter.
func CholUpdateRow(l *Matrix, k []float64, d float64) (*Matrix, error) {
	out := l.Clone()
	if err := CholUpdateRowInPlace(out, k, d, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// CholeskyJitter is Cholesky with progressive diagonal jitter: it retries
// with jitter 1e-10, 1e-9, ... up to maxJitter added to the diagonal until
// the factorization succeeds. It returns the factor and the jitter used.
func CholeskyJitter(a *Matrix, maxJitter float64) (*Matrix, float64, error) {
	if a.Rows != a.Cols {
		return nil, 0, fmt.Errorf("linalg: cholesky of %dx%d: not square", a.Rows, a.Cols)
	}
	l := NewMatrix(a.Rows, a.Rows)
	jit, err := CholeskyJitterInto(a, l, maxJitter)
	if err != nil {
		return nil, 0, err
	}
	return l, jit, nil
}

// SolveLower solves L y = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) ([]float64, error) {
	y := make([]float64, l.Rows)
	if err := SolveLowerInto(l, b, y); err != nil {
		return nil, err
	}
	return y, nil
}

// SolveUpperFromLowerT solves Lᵀ x = y where L is lower triangular, by
// backward substitution without materializing the transpose.
func SolveUpperFromLowerT(l *Matrix, y []float64) ([]float64, error) {
	x := make([]float64, l.Rows)
	if err := SolveUpperFromLowerTInto(l, y, x); err != nil {
		return nil, err
	}
	return x, nil
}

// CholeskySolve solves A x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) ([]float64, error) {
	x := make([]float64, l.Rows)
	if err := CholeskySolveInto(l, b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// LogDetFromChol returns log(det(A)) given the Cholesky factor L of A.
func LogDetFromChol(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// SolveLU solves the general square system A x = b using Gaussian
// elimination with partial pivoting. A is not modified.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: solveLU dims %dx%d, b %d", a.Rows, a.Cols, len(b))
	}
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-14 {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				vi, vp := m.At(col, j), m.At(piv, j)
				m.Set(col, j, vp)
				m.Set(piv, j, vi)
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Add(r, j, -f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues (ascending) and a matrix
// whose COLUMNS are the corresponding orthonormal eigenvectors.
func SymEigen(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: eigen of %dx%d: not square", a.Rows, a.Cols)
	}
	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of m.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort; n is small
		for j := i; j > 0 && vals[idx[j]] < vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// LeastSquares solves min ||A x - b||₂ via the normal equations with a tiny
// ridge term for stability. Suitable for the small, well-scaled regression
// problems in this codebase (knob importance, mixture fitting).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: lstsq dims %dx%d, b %d", a.Rows, a.Cols, len(b))
	}
	at := a.T()
	ata := Mul(at, a)
	for i := 0; i < ata.Rows; i++ {
		ata.Add(i, i, 1e-10)
	}
	atb := at.MulVec(b)
	return SolveLU(ata, atb)
}
