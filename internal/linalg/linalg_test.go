package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("At/Set broken")
	}
	m.Add(0, 0, 2)
	if m.At(0, 0) != 3 {
		t.Fatal("Add broken")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases data")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T dims %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %v", c.Data)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestIdentityAndScale(t *testing.T) {
	id := Identity(3)
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if got := Mul(id, a); !matEq(got, a, 0) {
		t.Fatal("I*A != A")
	}
	s := a.Clone().Scale(2)
	if s.At(1, 1) != 10 {
		t.Fatal("Scale broken")
	}
	sum := AddMat(a, a)
	if sum.At(2, 2) != 18 {
		t.Fatal("AddMat broken")
	}
}

func matEq(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func randSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := Mul(b, b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n)) // well conditioned
	}
	return a
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 20} {
		a := randSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := Mul(l, l.T())
		if !matEq(recon, a, 1e-8) {
			t.Fatalf("n=%d: L*Lt != A", n)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square should error")
	}
}

func TestCholeskyJitterRecovers(t *testing.T) {
	// Singular PSD matrix: rank 1.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	l, jit, err := CholeskyJitter(a, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if jit == 0 {
		t.Fatal("expected nonzero jitter")
	}
	if l.At(0, 0) <= 0 {
		t.Fatal("bad factor")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(6, rng)
	xTrue := make([]float64, 6)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := CholeskySolve(l, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("solve error at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestLogDetFromChol(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	l, _ := Cholesky(a)
	if got, want := LogDetFromChol(l), math.Log(36); math.Abs(got-want) > 1e-12 {
		t.Fatalf("logdet = %v, want %v", got, want)
	}
}

func TestSolveLU(t *testing.T) {
	a := FromRows([][]float64{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}})
	b := []float64{-8, 0, 3}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := a.MulVec(x)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-10 {
			t.Fatalf("Ax = %v, want %v", got, b)
		}
	}
	// Singular.
	s := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLU(s, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvector columns orthonormal.
	vtv := Mul(vecs.T(), vecs)
	if !matEq(vtv, Identity(3), 1e-10) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestSymEigenReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSPD(8, rng)
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// A = V diag(vals) Vt
	d := NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		d.Set(i, i, vals[i])
	}
	recon := Mul(Mul(vecs, d), vecs.T())
	if !matEq(recon, a, 1e-7) {
		t.Fatal("V D Vt != A")
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("eigenvalues not ascending")
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system.
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	xTrue := []float64{2, -3}
	b := a.MulVec(xTrue)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("lstsq = %v", x)
		}
	}
}

func TestDotNormAXPY(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("AXPY = %v", y)
	}
}

// naiveMul is the reference product the blocked Mul must match.
func naiveMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// TestMulBlockedMatchesNaive crosses the tile boundaries on purpose:
// non-square shapes, dims straddling mulBlock, and a one-hot-style sparse
// left operand exercising the zero skip.
func TestMulBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][3]int{
		{1, 1, 1}, {3, 7, 5}, {63, 64, 65}, {65, 130, 67}, {128, 64, 128},
	}
	for _, s := range shapes {
		a, b := NewMatrix(s[0], s[1]), NewMatrix(s[1], s[2])
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			if rng.Float64() < 0.3 {
				a.Data[i] = 0
			}
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		if got, want := Mul(a, b), naiveMul(a, b); !matEq(got, want, 1e-10) {
			t.Fatalf("%dx%d * %dx%d: blocked Mul diverges from naive", s[0], s[1], s[1], s[2])
		}
	}
}

func TestDotOddLengths(t *testing.T) {
	// The 4-way unrolled Dot must agree with the plain sum on every tail
	// length around the unroll width.
	for n := 0; n <= 9; n++ {
		a, b := make([]float64, n), make([]float64, n)
		want := 0.0
		for i := 0; i < n; i++ {
			a[i] = float64(i + 1)
			b[i] = float64(2*i - 3)
			want += a[i] * b[i]
		}
		if got := Dot(a, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d: Dot = %v, want %v", n, got, want)
		}
	}
}

// TestCholUpdateRowMatchesFull grows a factor one row at a time and checks
// it against factoring the full matrix from scratch — the equivalence the
// GP's incremental Observe path rests on.
func TestCholUpdateRowMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{2, 5, 30} {
		a := randSPD(n, rng)
		l, err := Cholesky(&Matrix{Rows: 1, Cols: 1, Data: []float64{a.At(0, 0)}})
		if err != nil {
			t.Fatal(err)
		}
		for m := 1; m < n; m++ {
			k := make([]float64, m)
			for i := 0; i < m; i++ {
				k[i] = a.At(m, i)
			}
			l, err = CholUpdateRow(l, k, a.At(m, m))
			if err != nil {
				t.Fatalf("n=%d m=%d: %v", n, m, err)
			}
		}
		full, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if !matEq(l, full, 1e-9) {
			t.Fatalf("n=%d: incremental factor diverges from full Cholesky", n)
		}
	}
}

func TestCholUpdateRowFromEmpty(t *testing.T) {
	l, err := CholUpdateRow(NewMatrix(0, 0), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows != 1 || l.At(0, 0) != 2 {
		t.Fatalf("factor = %+v", l)
	}
}

func TestCholUpdateRowRejectsNonPD(t *testing.T) {
	a := FromRows([][]float64{{1}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Border [1, 2; 2, 1] has determinant -3: not PD.
	if _, err := CholUpdateRow(l, []float64{2}, 1); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := CholUpdateRow(l, []float64{1, 2}, 1); err == nil {
		t.Fatal("row length mismatch should error")
	}
	if _, err := CholUpdateRow(NewMatrix(2, 3), []float64{1, 1}, 1); err == nil {
		t.Fatal("non-square factor should error")
	}
}

// TestCholUpdateRowDoesNotAliasInput: the returned factor must own its
// storage, so later updates cannot corrupt a caller's retained matrix.
func TestCholUpdateRowDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := randSPD(4, rng)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), l.Data...)
	grown, err := CholUpdateRow(l, []float64{0.1, 0.2, 0.3, 0.4}, a.At(0, 0)+10)
	if err != nil {
		t.Fatal(err)
	}
	grown.Set(0, 0, -99)
	for i := range before {
		if l.Data[i] != before[i] {
			t.Fatal("CholUpdateRow mutated its input factor")
		}
	}
}

// Property: CholeskySolve inverts MulVec for random SPD systems.
func TestCholeskySolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randSPD(n, r)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		got, err := CholeskySolve(l, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
