package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the kernels on the BO suggest path. Run with:
//
//	go test -bench 'BenchmarkCholesky|BenchmarkMul|BenchmarkCholUpdateRow' ./internal/linalg
//
// The sizes bracket realistic GP training-set sizes (64) through the
// large-history regime (512) the incremental path exists for, plus the
// deep-history sizes (1024, 4096) the sparse tier hands to the dense
// kernels as inducing-set problems.

var benchSizes = []int{64, 256, 512, 1024, 4096}

func BenchmarkCholesky(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := randSPD(n, rand.New(rand.NewSource(1)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Cholesky(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCholUpdateRow(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			a := randSPD(n+1, rng)
			sub := NewMatrix(n, n)
			for i := 0; i < n; i++ {
				copy(sub.Row(i), a.Row(i)[:n])
			}
			l, err := Cholesky(sub)
			if err != nil {
				b.Fatal(err)
			}
			k := make([]float64, n)
			for i := 0; i < n; i++ {
				k[i] = a.At(n, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := CholUpdateRow(l, k, a.At(n, n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMul(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			x, y := NewMatrix(n, n), NewMatrix(n, n)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
				y.Data[i] = rng.NormFloat64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Mul(x, y)
			}
		})
	}
}

func BenchmarkSolveLower(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			l, err := Cholesky(randSPD(n, rng))
			if err != nil {
				b.Fatal(err)
			}
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SolveLower(l, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
