// Allocation-free variants of the solver kernels. Every *Into function
// writes into caller-owned storage and performs bitwise the same arithmetic
// as its allocating counterpart (which are thin wrappers over these), so
// hot paths — gp.Predict, the acquisition search, incremental Cholesky
// maintenance — can reuse workspaces without changing a single result bit.
package linalg

import (
	"fmt"
	"math"
)

// MulVecInto computes m*x into out, which must have length m.Rows.
//
//autolint:hotpath
func (m *Matrix) MulVecInto(x, out []float64) {
	if m.Cols != len(x) || m.Rows != len(out) {
		panic(fmt.Sprintf("linalg: mulvecinto dims %dx%d * %d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
}

// SolveLowerInto solves L y = b for lower-triangular L by forward
// substitution, writing y into out. out may alias b: position i is read
// before it is written.
//
//autolint:hotpath
func SolveLowerInto(l *Matrix, b, out []float64) error {
	n := l.Rows
	if len(b) != n || len(out) != n {
		return fmt.Errorf("linalg: solve dims %d vs %d, %d", n, len(b), len(out))
	}
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := b[i] - Dot(row[:i], out[:i])
		if row[i] == 0 {
			return ErrSingular
		}
		out[i] = s / row[i]
	}
	return nil
}

// SolveUpperFromLowerTInto solves Lᵀ x = y by backward substitution without
// materializing the transpose, writing x into out. out may alias y.
//
//autolint:hotpath
func SolveUpperFromLowerTInto(l *Matrix, y, out []float64) error {
	n := l.Rows
	if len(y) != n || len(out) != n {
		return fmt.Errorf("linalg: solve dims %d vs %d, %d", n, len(y), len(out))
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * out[j]
		}
		d := l.At(i, i)
		if d == 0 {
			return ErrSingular
		}
		out[i] = s / d
	}
	return nil
}

// CholeskySolveInto solves A x = b given the Cholesky factor L of A,
// writing x into out. out may alias b; no intermediate storage is needed
// because both triangular solves run in place.
//
//autolint:hotpath
func CholeskySolveInto(l *Matrix, b, out []float64) error {
	if err := SolveLowerInto(l, b, out); err != nil {
		return err
	}
	return SolveUpperFromLowerTInto(l, out, out)
}

// CholeskyInto factors a + jitter·I into the lower-triangular l (which must
// be n×n and must not alias a). l is fully overwritten, including zeroing
// the strict upper triangle, so a reused buffer yields a factor bitwise
// identical to a freshly allocated one.
//
//autolint:hotpath
func CholeskyInto(a, l *Matrix, jitter float64) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: cholesky of %dx%d: not square", a.Rows, a.Cols)
	}
	n := a.Rows
	if l.Rows != n || l.Cols != n {
		return fmt.Errorf("linalg: cholesky factor dims %dx%d, want %dx%d", l.Rows, l.Cols, n, n)
	}
	for j := 0; j < n; j++ {
		ljrow := l.Row(j)[:j]
		d := a.At(j, j) + jitter - Dot(ljrow, ljrow)
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		upper := l.Row(j)[j+1:]
		for i := range upper {
			upper[i] = 0
		}
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			lirow := l.Row(i)
			lirow[j] = (a.At(i, j) - Dot(lirow[:j], ljrow)) * inv
		}
	}
	return nil
}

// CholeskyJitterInto is CholeskyInto with progressive diagonal jitter
// (1e-10, 1e-9, ... up to maxJitter), retrying until the factorization
// succeeds without ever cloning a. It returns the jitter used.
func CholeskyJitterInto(a, l *Matrix, maxJitter float64) (float64, error) {
	if err := CholeskyInto(a, l, 0); err == nil {
		return 0, nil
	} else if err != ErrNotPositiveDefinite {
		return 0, err
	}
	for jit := 1e-10; jit <= maxJitter; jit *= 10 {
		if err := CholeskyInto(a, l, jit); err == nil {
			return jit, nil
		} else if err != ErrNotPositiveDefinite {
			return 0, err
		}
	}
	return 0, ErrNotPositiveDefinite
}

// GrowSquare resizes an n×n matrix to (n+1)×(n+1) in place, keeping every
// existing element at its (i, j) position and zeroing the new row and
// column. When the backing array has capacity the rows are restrided
// backward (row i moves from offset i·n to i·(n+1); descending order keeps
// each move ahead of the data it overwrites); otherwise a new array is
// allocated with geometric reserve so a growing SPD system — one Observe
// per trial — costs amortized O(1) allocations. Returns m.
func (m *Matrix) GrowSquare() *Matrix {
	n := m.Rows
	if m.Cols != n {
		panic(fmt.Sprintf("linalg: growsquare of %dx%d: not square", m.Rows, m.Cols))
	}
	nn := n + 1
	need := nn * nn
	if cap(m.Data) < need {
		reserve := nn + nn/4 + 4
		data := make([]float64, need, reserve*reserve)
		for i := 0; i < n; i++ {
			copy(data[i*nn:i*nn+n], m.Data[i*n:(i+1)*n])
		}
		m.Data = data
	} else {
		m.Data = m.Data[:need]
		for i := n - 1; i >= 1; i-- {
			copy(m.Data[i*nn:i*nn+n], m.Data[i*n:i*n+n])
		}
		for i := 0; i < n; i++ {
			m.Data[i*nn+n] = 0
		}
		last := m.Data[n*nn : need]
		for i := range last {
			last[i] = 0
		}
	}
	m.Rows, m.Cols = nn, nn
	return m
}

// CholUpdateRowInPlace extends the lower-triangular Cholesky factor l of an
// n×n SPD matrix to the factor of the bordered (n+1)×(n+1) matrix in O(n²),
// growing l in place (see CholUpdateRow for the math). scratch, when it has
// capacity n, is used for the forward solve; pass nil to allocate. l is
// untouched on error, so callers can fall back to a full refactorization.
func CholUpdateRowInPlace(l *Matrix, k []float64, d float64, scratch []float64) error {
	n := l.Rows
	if l.Cols != n {
		return fmt.Errorf("linalg: cholupdate of %dx%d: not square", l.Rows, l.Cols)
	}
	if len(k) != n {
		return fmt.Errorf("linalg: cholupdate row length %d vs %d", len(k), n)
	}
	if cap(scratch) < n {
		scratch = make([]float64, n)
	}
	c := scratch[:n]
	if err := SolveLowerInto(l, k, c); err != nil {
		return err
	}
	s := d - Dot(c, c)
	if s <= 0 || math.IsNaN(s) {
		return ErrNotPositiveDefinite
	}
	l.GrowSquare()
	last := l.Row(n)
	copy(last[:n], c)
	last[n] = math.Sqrt(s)
	return nil
}
