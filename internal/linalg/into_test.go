package linalg

import (
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 3, 8, 17} {
		a := randSPD(n, rng)
		b := randVec(rng, n)

		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d cholesky: %v", n, err)
		}
		// Into a dirty buffer: must come out bitwise identical, upper
		// triangle included.
		l2 := NewMatrix(n, n)
		for i := range l2.Data {
			l2.Data[i] = 99
		}
		if err := CholeskyInto(a, l2, 0); err != nil {
			t.Fatalf("n=%d choleskyinto: %v", n, err)
		}
		for i, v := range l.Data {
			if l2.Data[i] != v {
				t.Fatalf("n=%d choleskyinto differs at %d: %v vs %v", n, i, l2.Data[i], v)
			}
		}

		y, err := SolveLower(l, b)
		if err != nil {
			t.Fatalf("n=%d solvelower: %v", n, err)
		}
		x, err := SolveUpperFromLowerT(l, y)
		if err != nil {
			t.Fatalf("n=%d solveupper: %v", n, err)
		}
		got := make([]float64, n)
		if err := CholeskySolveInto(l, b, got); err != nil {
			t.Fatalf("n=%d choleskysolveinto: %v", n, err)
		}
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("n=%d choleskysolveinto differs at %d", n, i)
			}
		}
		// In-place aliasing: out == b.
		alias := append([]float64(nil), b...)
		if err := CholeskySolveInto(l, alias, alias); err != nil {
			t.Fatalf("n=%d aliased solve: %v", n, err)
		}
		for i := range x {
			if alias[i] != x[i] {
				t.Fatalf("n=%d aliased solve differs at %d", n, i)
			}
		}

		mv := a.MulVec(b)
		mv2 := make([]float64, n)
		a.MulVecInto(b, mv2)
		for i := range mv {
			if mv2[i] != mv[i] {
				t.Fatalf("n=%d mulvecinto differs at %d", n, i)
			}
		}
	}
}

func TestCholeskyJitterIntoMatchesCholeskyJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// A rank-deficient gram (duplicated rows) forces the jitter path.
	n := 6
	b := NewMatrix(n, 2)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := Mul(b, b.T())
	l1, jit1, err := CholeskyJitter(a, 1e-3)
	if err != nil {
		t.Fatalf("choleskyjitter: %v", err)
	}
	if jit1 == 0 {
		t.Fatalf("expected jitter path, got 0")
	}
	l2 := NewMatrix(n, n)
	jit2, err := CholeskyJitterInto(a, l2, 1e-3)
	if err != nil {
		t.Fatalf("choleskyjitterinto: %v", err)
	}
	if jit2 != jit1 {
		t.Fatalf("jitter %v vs %v", jit2, jit1)
	}
	for i, v := range l1.Data {
		if l2.Data[i] != v {
			t.Fatalf("jitter factor differs at %d", i)
		}
	}
}

func TestGrowSquare(t *testing.T) {
	m := NewMatrix(0, 0)
	want := NewMatrix(0, 0)
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 20; n++ {
		m.GrowSquare()
		grown := NewMatrix(n+1, n+1)
		for i := 0; i < n; i++ {
			copy(grown.Row(i)[:n], want.Row(i))
		}
		want = grown
		for i, v := range want.Data {
			if m.Data[i] != v {
				t.Fatalf("n=%d grow mismatch at %d: %v vs %v", n, i, m.Data[i], v)
			}
		}
		// Dirty the new border so the next grow must preserve it.
		for j := 0; j <= n; j++ {
			v := rng.NormFloat64()
			m.Set(n, j, v)
			want.Set(n, j, v)
			m.Set(j, n, v)
			want.Set(j, n, v)
		}
	}
}

func TestCholUpdateRowInPlaceMatchesCholUpdateRow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 9
	a := randSPD(n+1, rng)
	sub := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(sub.Row(i), a.Row(i)[:n])
	}
	l, err := Cholesky(sub)
	if err != nil {
		t.Fatalf("cholesky: %v", err)
	}
	k := a.Row(n)[:n]
	d := a.At(n, n)
	want, err := CholUpdateRow(l, k, d)
	if err != nil {
		t.Fatalf("cholupdaterow: %v", err)
	}
	scratch := make([]float64, n)
	if err := CholUpdateRowInPlace(l, k, d, scratch); err != nil {
		t.Fatalf("inplace: %v", err)
	}
	if l.Rows != n+1 || l.Cols != n+1 {
		t.Fatalf("inplace dims %dx%d", l.Rows, l.Cols)
	}
	for i, v := range want.Data {
		if l.Data[i] != v {
			t.Fatalf("inplace differs at %d: %v vs %v", i, l.Data[i], v)
		}
	}
}

func TestCholUpdateRowInPlaceErrorLeavesFactorIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 5
	a := randSPD(n, rng)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("cholesky: %v", err)
	}
	before := append([]float64(nil), l.Data...)
	k := make([]float64, n) // zero border with d=0 is not SPD
	if err := CholUpdateRowInPlace(l, k, 0, nil); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	if l.Rows != n || l.Cols != n {
		t.Fatalf("factor grew on error: %dx%d", l.Rows, l.Cols)
	}
	for i, v := range before {
		if l.Data[i] != v {
			t.Fatalf("factor mutated on error at %d", i)
		}
	}
}
