package trial

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"autotune/internal/studystore"
)

// StudyJournal adapts one study inside a crash-safe segmented study
// store (internal/studystore) to the JournalSink contract: every Append
// is CRC-framed and fsync'd before it returns, segments rotate and
// compact underneath, and recovery quarantines corruption instead of
// silently skipping it. Multiple studies share one store directory.
type StudyJournal struct {
	store *studystore.Store
	study string
}

var _ JournalSink = (*StudyJournal)(nil)

// OpenStudyJournal opens (creating if needed) the segmented study store
// at dir and returns a sink journaling trials into the named study.
func OpenStudyJournal(dir, study string) (*StudyJournal, error) {
	if study == "" {
		study = "default"
	}
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		return nil, err
	}
	return &StudyJournal{store: st, study: study}, nil
}

// Append implements JournalSink: the record is durable when it returns.
func (sj *StudyJournal) Append(rec TrialRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("trial: marshal store record %d: %w", rec.ID, err)
	}
	return sj.store.Append(studystore.Record{Study: sj.study, ID: int64(rec.ID), Payload: data})
}

// Close closes the underlying store.
func (sj *StudyJournal) Close() error { return sj.store.Close() }

// Store exposes the underlying store (stats, compaction, quarantine).
func (sj *StudyJournal) Store() *studystore.Store { return sj.store }

// ReadStudyJournal loads one study's records from the store at dir,
// sorted by trial ID with duplicates dropped. A missing directory is an
// empty journal, not an error.
func ReadStudyJournal(dir, study string) ([]TrialRecord, error) {
	if study == "" {
		study = "default"
	}
	st, err := openStoreRead(dir)
	if st == nil || err != nil {
		return nil, err
	}
	defer st.Close()
	return decodeStoreRecords(dir, st.Records(study))
}

// readStoreDir loads every study's records from the store at dir, merged
// and deduplicated by trial ID (first occurrence wins, studies visited
// in sorted order) — the directory arm of ReadJournal.
func readStoreDir(dir string) ([]TrialRecord, error) {
	st, err := openStoreRead(dir)
	if st == nil || err != nil {
		return nil, err
	}
	defer st.Close()
	var out []TrialRecord
	seen := map[int]bool{}
	for _, study := range st.Studies() {
		recs, err := decodeStoreRecords(dir, st.Records(study))
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			if seen[rec.ID] {
				continue
			}
			seen[rec.ID] = true
			out = append(out, rec)
		}
	}
	sortRecordsByID(out)
	return out, nil
}

// openStoreRead opens the store read-only; a missing directory yields
// (nil, nil).
func openStoreRead(dir string) (*studystore.Store, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil, nil
	}
	return studystore.Open(dir, studystore.Options{ReadOnly: true})
}

// decodeStoreRecords unmarshals store payloads back into TrialRecords.
// Payloads already passed CRC validation, so a parse failure here is
// real corruption, not a torn write — it surfaces as ErrJournalCorrupt.
func decodeStoreRecords(dir string, recs []studystore.Record) ([]TrialRecord, error) {
	out := make([]TrialRecord, 0, len(recs))
	for _, r := range recs {
		var rec TrialRecord
		if !decodeTrialRecord(r.Payload, &rec) {
			rec = TrialRecord{}
			if err := json.Unmarshal(r.Payload, &rec); err != nil {
				return nil, fmt.Errorf("%w: store %s study %q record %d: %v",
					ErrJournalCorrupt, dir, r.Study, r.ID, err)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

func sortRecordsByID(recs []TrialRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].ID < recs[j-1].ID; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// MigrateJournal moves a v0 single-file journal into the segmented study
// store at dir under the named study, then removes the v0 file (the
// removal is made durable with a directory fsync). Records already in
// the store keep precedence — re-running a partially completed migration
// is safe. A missing v0 file is a no-op. Returns the number of records
// read from the v0 journal.
func MigrateJournal(v0path, dir, study string) (int, error) {
	recs, err := ReadJournal(v0path)
	if err != nil {
		return 0, fmt.Errorf("trial: migrate %s: %w", v0path, err)
	}
	if recs == nil {
		return 0, nil
	}
	sj, err := OpenStudyJournal(dir, study)
	if err != nil {
		return 0, fmt.Errorf("trial: migrate %s: %w", v0path, err)
	}
	for _, rec := range recs {
		if err := sj.Append(rec); err != nil {
			//autolint:ignore droppederr already failing; the close error is secondary
			sj.Close()
			return 0, fmt.Errorf("trial: migrate %s: %w", v0path, err)
		}
	}
	if err := sj.Close(); err != nil {
		return 0, fmt.Errorf("trial: migrate %s: %w", v0path, err)
	}
	// Every record is durable in the store; only now may the v0 file go.
	if err := os.Remove(v0path); err != nil {
		return 0, fmt.Errorf("trial: migrate %s: %w", v0path, err)
	}
	if err := syncDir(filepath.Dir(v0path)); err != nil {
		return 0, err
	}
	return len(recs), nil
}
