package trial

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/workload"
)

func quadEnv() *FuncEnv {
	return &FuncEnv{
		Sp: space.MustNew(space.Float("x", 0, 1)),
		F:  func(c space.Config) float64 { return (c.Float("x") - 0.6) * (c.Float("x") - 0.6) },
	}
}

func TestRunSequential(t *testing.T) {
	env := quadEnv()
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(1)))
	rep, err := Run(o, env, Options{Budget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 50 {
		t.Fatalf("trials = %d", len(rep.Trials))
	}
	if rep.BestValue > 0.05 {
		t.Fatalf("best = %v", rep.BestValue)
	}
	if rep.TotalCostSeconds != rep.WallClockSeconds {
		t.Fatal("sequential wall clock should equal total cost")
	}
	// Trial IDs sequential.
	for i, tr := range rep.Trials {
		if tr.ID != i {
			t.Fatalf("trial %d has id %d", i, tr.ID)
		}
	}
}

func TestRunParallelWallClock(t *testing.T) {
	env := quadEnv()
	env.CostPerTrial = 10
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(2)))
	rep, err := Run(o, env, Options{Budget: 40, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 40 {
		t.Fatalf("trials = %d", len(rep.Trials))
	}
	// 40 trials of 10s in batches of 4: wall clock = 10 batches x 10s.
	if math.Abs(rep.WallClockSeconds-100) > 1e-9 {
		t.Fatalf("wall clock = %v, want 100", rep.WallClockSeconds)
	}
	if math.Abs(rep.TotalCostSeconds-400) > 1e-9 {
		t.Fatalf("total = %v, want 400", rep.TotalCostSeconds)
	}
}

func TestRunValidation(t *testing.T) {
	env := quadEnv()
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(3)))
	if _, err := Run(o, env, Options{}); err == nil {
		t.Fatal("budget 0 should error")
	}
}

func TestRunGridExhaustion(t *testing.T) {
	env := quadEnv()
	o := optimizer.NewGridLevels(env.Space(), 5)
	rep, err := Run(o, env, Options{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 5 {
		t.Fatalf("trials = %d, want 5 (grid size)", len(rep.Trials))
	}
}

type crashyEnv struct {
	sp *space.Space
}

func (e *crashyEnv) Space() *space.Space { return e.sp }

func (e *crashyEnv) Run(_ context.Context, cfg space.Config, fid float64) (Result, error) {
	x := cfg.Float("x")
	if x > 0.8 {
		return Result{CostSeconds: 0.1}, ErrCrash
	}
	return Result{Value: math.Abs(x - 0.5), CostSeconds: 1}, nil
}

func TestRunCrashHandling(t *testing.T) {
	env := &crashyEnv{sp: space.MustNew(space.Float("x", 0, 1))}
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(4)))
	rep, err := Run(o, env, Options{Budget: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 {
		t.Fatal("expected some crashes")
	}
	// Crashed trials must not become the best.
	if rep.BestConfig.Float("x") > 0.8 {
		t.Fatalf("best config is in the crash region: %v", rep.BestConfig)
	}
	// Observations for crashes are finite penalties.
	for _, obs := range o.History() {
		if math.IsInf(obs.Value, 0) || math.IsNaN(obs.Value) {
			t.Fatal("crash observed as non-finite")
		}
	}
	// Crash records flagged.
	found := false
	for _, tr := range rep.Trials {
		if tr.Crashed {
			found = true
			if tr.Value <= 0.5 {
				t.Fatalf("crash penalty %v should exceed worst finite", tr.Value)
			}
		}
	}
	if !found {
		t.Fatal("no crash records")
	}
}

func TestSystemEnvRuns(t *testing.T) {
	env := &SystemEnv{
		Sys: simsys.NewDBMS(simsys.MediumVM()),
		WL:  workload.TPCC(),
	}
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(5)))
	rep, err := Run(o, env, Options{Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestValue <= 0 {
		t.Fatalf("best latency = %v", rep.BestValue)
	}
	// Metrics recorded.
	last := rep.Trials[len(rep.Trials)-1]
	if last.CostSeconds != 300 {
		t.Fatalf("cost = %v, want base duration 300", last.CostSeconds)
	}
}

func TestSystemEnvFidelityCost(t *testing.T) {
	env := &SystemEnv{
		Sys: simsys.NewDBMS(simsys.MediumVM()),
		WL:  workload.TPCC(),
	}
	r, err := env.Run(context.Background(), env.Space().Default(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.CostSeconds-30) > 1e-9 {
		t.Fatalf("cost = %v, want 30", r.CostSeconds)
	}
}

func TestEarlyAbortSavesCost(t *testing.T) {
	mk := func(margin float64) Report {
		env := &SystemEnv{
			Sys: simsys.NewDBMS(simsys.MediumVM()),
			WL:  workload.TPCH(1),
		}
		o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(6)))
		rep, err := Run(o, env, Options{Budget: 30, AbortMargin: margin})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	withAbort := mk(0.2)
	without := mk(0)
	if withAbort.Aborts == 0 {
		t.Fatal("expected aborted trials")
	}
	if !(withAbort.TotalCostSeconds < without.TotalCostSeconds) {
		t.Fatalf("abort cost %v should be below full cost %v",
			withAbort.TotalCostSeconds, without.TotalCostSeconds)
	}
	// Quality shouldn't collapse: same best value (both found it before
	// aborts matter) or close.
	if withAbort.BestValue > without.BestValue*1.5 {
		t.Fatalf("abort best %v much worse than full %v", withAbort.BestValue, without.BestValue)
	}
}

func TestReportSaveLoad(t *testing.T) {
	env := quadEnv()
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(7)))
	rep, err := Run(o, env, Options{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Trials) != 10 || loaded.BestValue != rep.BestValue {
		t.Fatalf("round trip mismatch: %+v", loaded)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestBestOverTimeMonotone(t *testing.T) {
	env := quadEnv()
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(8)))
	rep, err := Run(o, env, Options{Budget: 30})
	if err != nil {
		t.Fatal(err)
	}
	curve := rep.BestOverTime()
	if len(curve) != 30 {
		t.Fatalf("curve len = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatal("best-over-time must be non-increasing")
		}
	}
	if curve[len(curve)-1] != rep.BestValue {
		t.Fatal("final curve point should equal best")
	}
}

func TestAllSuccessfulTrialsFail(t *testing.T) {
	env := &crashyEnv{sp: space.MustNew(space.Float("x", 0.9, 1))} // always crashes
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(9)))
	if _, err := Run(o, env, Options{Budget: 5}); err == nil {
		t.Fatal("all-crash run should error")
	}
}

func TestErrCrashAlias(t *testing.T) {
	if !errors.Is(ErrCrash, simsys.ErrCrash) {
		t.Fatal("ErrCrash should alias simsys.ErrCrash")
	}
}
