package trial

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrJournalPoisoned marks a journal unusable after a failed write or
// fsync: the file may hold a record that was never made durable, so
// appending past that hole would break the WAL's prefix guarantee.
// Reopen (and replay) to re-establish the on-disk truth.
var ErrJournalPoisoned = errors.New("trial: journal poisoned by earlier write failure")

// ErrJournalCorrupt marks a journal with a damaged interior record: a
// record before the final line failed to parse, which a crash mid-append
// cannot produce (only the tail can tear). The journal's prefix
// semantics are broken and the damage must be inspected, not skipped.
var ErrJournalCorrupt = errors.New("trial: corrupt interior journal record")

// JournalSink receives every completed trial before the optimizer
// observes it — the write-ahead contract. Implementations must make the
// record durable before returning nil. The v0 single-file Journal and
// the segmented StudyJournal both satisfy it; tests may substitute
// their own.
type JournalSink interface {
	Append(rec TrialRecord) error
	Close() error
}

// Journal is a crash-safe write-ahead log of completed trials: one JSON
// line per TrialRecord, fsync'd before Append returns. The tuning loop
// appends every outcome to the journal *before* reporting it to the
// optimizer, so a process killed mid-batch loses no finished trial —
// Resume replays the journal, including records from a batch whose
// checkpoint was never written.
//
// The file is append-only across runs: a resumed session keeps appending
// to the same journal, and records are deduplicated by trial ID on read.
// A torn final line (the classic crash-during-append artifact) is
// ignored.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// err poisons the journal after a failed write or fsync: the durable
	// state of the last record is unknown, so further appends must fail
	// fast instead of writing past the hole.
	err error
}

var _ JournalSink = (*Journal)(nil)

// OpenJournal opens (creating if needed) the journal at path for
// appending and fsyncs the parent directory so the file itself survives
// a crash immediately after creation.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trial: open journal %s: %w", path, err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		//autolint:ignore droppederr already failing; the close error is secondary
		f.Close()
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// Append writes one record as a JSON line and fsyncs it. An append
// failure means the durability guarantee is gone, so callers must treat
// it as fatal for the run (the record has NOT been made durable), and
// the journal poisons itself: every subsequent Append fails with
// ErrJournalPoisoned until the journal is reopened.
func (j *Journal) Append(rec TrialRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("trial: marshal journal record %d: %w", rec.ID, err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return fmt.Errorf("%w (cause: %v)", ErrJournalPoisoned, j.err)
	}
	if _, err := j.f.Write(data); err != nil {
		j.err = err
		return fmt.Errorf("trial: append journal %s: %w", j.path, err)
	}
	//autolint:ignore lockheld single-file WAL: the journal lock IS the write-ordering barrier, so it is held across fsync by design (the journal has no separate read index to shield)
	if err := j.f.Sync(); err != nil {
		// The write reached the file but never hit a durability barrier:
		// the record is in an ambiguous durable state and anything
		// appended after it could survive a crash that it does not.
		j.err = err
		return fmt.Errorf("trial: sync journal %s: %w", j.path, err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ReadJournal loads every intact record from a journal, sorted by trial
// ID with duplicates dropped (first occurrence wins). A missing path is
// an empty journal, not an error. Two journal layouts are read
// transparently: a v0 single JSON-lines file, and a directory holding a
// segmented study store (records merged across its studies).
//
// Corruption semantics follow the WAL prefix contract: a torn *final*
// line is the expected crash-mid-append artifact and is skipped, but an
// unparseable *interior* record surfaces as an error wrapping
// ErrJournalCorrupt — records after it were acknowledged after it, so
// dropping it silently would desynchronize replay from the live run.
func ReadJournal(path string) ([]TrialRecord, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return readStoreDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("trial: open journal %s: %w", path, err)
	}
	defer f.Close()
	var out []TrialRecord
	seen := map[int]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	badLine := 0 // line number of a parse failure awaiting classification
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if len(line) == 0 {
			continue
		}
		if badLine != 0 {
			// A record follows the damaged line, so the damage is
			// interior — a crash can only tear the tail.
			return nil, fmt.Errorf("%w: %s line %d", ErrJournalCorrupt, path, badLine)
		}
		var rec TrialRecord
		if !decodeTrialRecord(line, &rec) {
			rec = TrialRecord{}
			if err := json.Unmarshal(line, &rec); err != nil {
				badLine = lineNo
				continue
			}
		}
		if seen[rec.ID] {
			continue
		}
		seen[rec.ID] = true
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trial: scan journal %s: %w", path, err)
	}
	// A trailing badLine here is a torn tail: the record never finished
	// its fsync'd write, so it never reached the optimizer either, and
	// dropping it is lossless.
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, nil
}

// syncDir fsyncs a directory so a rename or create inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("trial: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trial: sync dir %s: %w", dir, err)
	}
	return nil
}
