package trial

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Journal is a crash-safe write-ahead log of completed trials: one JSON
// line per TrialRecord, fsync'd before Append returns. The tuning loop
// appends every outcome to the journal *before* reporting it to the
// optimizer, so a process killed mid-batch loses no finished trial —
// Resume replays the journal, including records from a batch whose
// checkpoint was never written.
//
// The file is append-only across runs: a resumed session keeps appending
// to the same journal, and records are deduplicated by trial ID on read.
// A torn final line (the classic crash-during-append artifact) is
// ignored.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) the journal at path for
// appending and fsyncs the parent directory so the file itself survives
// a crash immediately after creation.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trial: open journal %s: %w", path, err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		//autolint:ignore droppederr already failing; the close error is secondary
		f.Close()
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// Append writes one record as a JSON line and fsyncs it. An append
// failure means the durability guarantee is gone, so callers must treat
// it as fatal for the run (the record has NOT been made durable).
func (j *Journal) Append(rec TrialRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("trial: marshal journal record %d: %w", rec.ID, err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("trial: append journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("trial: sync journal %s: %w", j.path, err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ReadJournal loads every intact record from a journal file, sorted by
// trial ID with duplicates dropped (first occurrence wins). A missing
// file is an empty journal, not an error; a torn final line is skipped.
func ReadJournal(path string) ([]TrialRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("trial: open journal %s: %w", path, err)
	}
	defer f.Close()
	var out []TrialRecord
	seen := map[int]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec TrialRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail is expected after a crash mid-append; any
			// record that did not finish its fsync'd write never reached
			// the optimizer either, so dropping it is lossless.
			continue
		}
		if seen[rec.ID] {
			continue
		}
		seen[rec.ID] = true
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trial: scan journal %s: %w", path, err)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, nil
}

// syncDir fsyncs a directory so a rename or create inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("trial: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trial: sync dir %s: %w", dir, err)
	}
	return nil
}
