package trial

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/sched"
	"autotune/internal/space"
)

// discreteEnv is a tiny categorical objective where optimizers inevitably
// repeat configurations, so the evaluation cache has work to do.
type discreteEnv struct {
	sp    *space.Space
	runs  atomic.Int64
	onRun func(n int64)
}

func newDiscreteEnv(levels ...string) *discreteEnv {
	return &discreteEnv{sp: space.MustNew(space.Categorical("c", levels...))}
}

func (e *discreteEnv) Space() *space.Space { return e.sp }

func (e *discreteEnv) Run(ctx context.Context, cfg space.Config, fid float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	n := e.runs.Add(1)
	if e.onRun != nil {
		e.onRun(n)
	}
	return Result{Value: float64(len(cfg.Str("c"))), CostSeconds: 1}, nil
}

// TestDedupEvalsCachesRepeats: over a 3-config space a 30-trial run must
// touch the environment at most 3 times; every other trial is a journal-
// visible cache hit at zero cost.
func TestDedupEvalsCachesRepeats(t *testing.T) {
	env := newDiscreteEnv("a", "bb", "ccc")
	o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(4)))
	rep, err := Run(o, env, Options{Budget: 30, DedupEvals: true})
	if err != nil {
		t.Fatal(err)
	}
	runs := env.runs.Load()
	if runs > 3 {
		t.Fatalf("environment ran %d times for 3 distinct configs", runs)
	}
	if got, want := rep.CacheHits, 30-int(runs); got != want {
		t.Fatalf("CacheHits = %d, want %d", got, want)
	}
	hitRecords := 0
	for _, tr := range rep.Trials {
		if tr.CacheHit {
			hitRecords++
			if tr.CostSeconds != 0 {
				t.Fatalf("trial %d: cache hit charged %v seconds", tr.ID, tr.CostSeconds)
			}
		}
	}
	if hitRecords != rep.CacheHits {
		t.Fatalf("%d CacheHit records vs CacheHits=%d", hitRecords, rep.CacheHits)
	}
	if rep.TotalCostSeconds != float64(runs) {
		t.Fatalf("TotalCostSeconds = %v, want %v (hits are free)", rep.TotalCostSeconds, float64(runs))
	}
}

// TestDedupEvalsSingleFlightInBatch: duplicates inside one concurrent batch
// must wait for the single leading evaluation, not race the environment.
func TestDedupEvalsSingleFlightInBatch(t *testing.T) {
	env := newDiscreteEnv("only")
	o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(9)))
	rep, err := Run(o, env, Options{Budget: 8, Parallel: 4, DedupEvals: true})
	if err != nil {
		t.Fatal(err)
	}
	if runs := env.runs.Load(); runs != 1 {
		t.Fatalf("environment ran %d times for 1 distinct config", runs)
	}
	if rep.CacheHits != 7 {
		t.Fatalf("CacheHits = %d, want 7", rep.CacheHits)
	}
}

// TestDedupEvalsKillMidBatchJournalAgrees is the crash-consistency property
// for the cache: cache hits append exactly one WAL record each, so after a
// mid-run kill and a journal resume every (config, fidelity) pair still has
// at most one real measurement — replay and cache agree on trial counts,
// and nothing is double-journaled.
func TestDedupEvalsKillMidBatchJournalAgrees(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "trials.wal")
	opts := Options{
		Budget:     24,
		Parallel:   4,
		Scheduler:  &sched.Options{},
		Journal:    wal,
		DedupEvals: true,
	}
	env := newDiscreteEnv("a", "bb", "ccc", "dddd", "eeeee", "ffffff")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	env.onRun = func(n int64) {
		if n == 3 {
			cancel()
		}
	}
	o1 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(31)))
	rep1, err := RunContext(ctx, o1, env, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rep1.Trials) == 0 || len(rep1.Trials) >= opts.Budget {
		t.Fatalf("pre-kill trials = %d, want a partial run", len(rep1.Trials))
	}
	recs, err := ReadJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(rep1.Trials) {
		t.Fatalf("journal has %d records, report absorbed %d", len(recs), len(rep1.Trials))
	}
	preHits := 0
	for _, r := range recs {
		if r.CacheHit {
			preHits++
		}
	}
	if preHits != rep1.CacheHits {
		t.Fatalf("journal shows %d cache hits, report counted %d", preHits, rep1.CacheHits)
	}

	env2 := newDiscreteEnv("a", "bb", "ccc", "dddd", "eeeee", "ffffff")
	o2 := optimizer.NewRandom(env2.sp, rand.New(rand.NewSource(32)))
	rep2, err := Resume(o2, env2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Trials) != opts.Budget {
		t.Fatalf("final trials = %d, want %d", len(rep2.Trials), opts.Budget)
	}
	final, err := ReadJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != opts.Budget {
		t.Fatalf("journal after resume has %d records, want %d", len(final), opts.Budget)
	}
	// Each (config, fidelity) pair has at most ONE real measurement across
	// the whole resumed history: the resume re-warmed the cache from the
	// journal, so pre-kill measurements are reused, never repeated.
	measured := map[string]int{}
	ids := map[int]bool{}
	hits := 0
	for _, r := range final {
		if ids[r.ID] {
			t.Fatalf("trial ID %d journaled twice", r.ID)
		}
		ids[r.ID] = true
		if r.CacheHit {
			hits++
			if r.CostSeconds != 0 {
				t.Fatalf("trial %d: cache hit charged %v seconds", r.ID, r.CostSeconds)
			}
			continue
		}
		if !r.Crashed {
			measured[r.Config.Key()]++
		}
	}
	for key, n := range measured {
		if n > 1 {
			t.Fatalf("config %s measured %d times despite the cache", key, n)
		}
	}
	if hits != rep2.CacheHits {
		t.Fatalf("journal shows %d cache hits, resumed report counted %d", hits, rep2.CacheHits)
	}
	if got, want := env2.runs.Load(), int64(len(measured))-env.runs.Load(); got > want {
		t.Fatalf("resume ran env %d times, want at most %d new measurements", got, want)
	}
}
