package trial

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"autotune/internal/cloud"
	"autotune/internal/optimizer"
	"autotune/internal/sched"
	"autotune/internal/space"
)

// tenHostFleet is the acceptance-criterion fleet: 10 hosts with 10% of
// them (one) running 10x slower than the rest.
func tenHostFleet() []cloud.HostProfile {
	hosts := make([]cloud.HostProfile, 10)
	for i := range hosts {
		hosts[i] = cloud.HostProfile{Mult: 1}
	}
	hosts[9] = cloud.HostProfile{Mult: 10, Outlier: true}
	return hosts
}

// runFleet runs a fixed budget over the 10%-slow fleet, with hedging on
// or off. Hedging off reproduces barrier semantics on the same fleet:
// every batch waits for its straggler.
func runFleet(t *testing.T, hedge float64) Report {
	t.Helper()
	env := quadEnv()
	o := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(7)))
	rep, err := Run(o, env, Options{
		Budget:    100,
		Parallel:  10,
		Scheduler: &sched.Options{Hosts: tenHostFleet(), HedgeQuantile: hedge},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 100 {
		t.Fatalf("trials = %d, want 100", len(rep.Trials))
	}
	return rep
}

func TestSchedStragglerHedgingBeatsBarrier(t *testing.T) {
	barrier := runFleet(t, 0)
	hedged := runFleet(t, 0.8)

	if barrier.Hedges != 0 {
		t.Fatalf("barrier run hedged %d times", barrier.Hedges)
	}
	// Every batch of 10 puts one unit-cost trial on the 10x host, so the
	// barrier path pays 10 simulated seconds per batch.
	if barrier.WallClockSeconds < 99 {
		t.Fatalf("barrier wall clock = %v, want ~100", barrier.WallClockSeconds)
	}
	// Hedging duplicates the straggler onto a fast host once the duration
	// window is primed; only the first (unprimed) batch pays full price.
	if hedged.WallClockSeconds > 0.4*barrier.WallClockSeconds {
		t.Fatalf("hedged wall clock = %v, not measurably below barrier %v",
			hedged.WallClockSeconds, barrier.WallClockSeconds)
	}
	if hedged.Hedges < 5 || hedged.HedgeWins < 5 {
		t.Fatalf("hedges = %d wins = %d, want several of each", hedged.Hedges, hedged.HedgeWins)
	}
	marked := 0
	for _, tr := range hedged.Trials {
		if tr.Hedged {
			marked++
		}
	}
	if marked != hedged.Hedges {
		t.Fatalf("hedged records = %d, stats say %d", marked, hedged.Hedges)
	}
	// The duplicates burned real fleet time: total cost accounts for it.
	if hedged.TotalCostSeconds <= 100 {
		t.Fatalf("hedged total cost = %v, should exceed the 100 trial-seconds", hedged.TotalCostSeconds)
	}
}

func TestSchedHedgedRunDeterministic(t *testing.T) {
	a := runFleet(t, 0.8)
	b := runFleet(t, 0.8)
	if !reflect.DeepEqual(a.Trials, b.Trials) {
		t.Fatal("identically-seeded hedged runs produced different trial logs")
	}
	if a.WallClockSeconds != b.WallClockSeconds || a.TotalCostSeconds != b.TotalCostSeconds {
		t.Fatalf("clock mismatch: wall %v vs %v, total %v vs %v",
			a.WallClockSeconds, b.WallClockSeconds, a.TotalCostSeconds, b.TotalCostSeconds)
	}
	if a.Hedges != b.Hedges || a.HedgeWins != b.HedgeWins {
		t.Fatalf("hedge stats mismatch: %d/%d vs %d/%d", a.Hedges, a.HedgeWins, b.Hedges, b.HedgeWins)
	}
}

func TestSchedKillMidBatchResumesFromJournalExactly(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "trials.wal")
	opts := Options{
		Budget:    20,
		Parallel:  4,
		Scheduler: &sched.Options{},
		Journal:   wal,
	}

	// Kill the run in the middle of the second batch: trial 7 cancels the
	// context after it has produced its result, so batch 2 completes
	// trials 5..7 and never starts its fourth.
	env := newCountingEnv()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	env.onRun = func(n int64) error {
		if n == 7 {
			cancel()
		}
		return nil
	}
	o1 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(21)))
	rep1, err := RunContext(ctx, o1, env, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rep1.Trials) == 0 || len(rep1.Trials) >= 20 {
		t.Fatalf("pre-kill trials = %d, want a partial run", len(rep1.Trials))
	}

	// The WAL holds exactly the absorbed set: nothing lost, nothing extra.
	recs, err := ReadJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	walIDs := map[int]bool{}
	for _, r := range recs {
		walIDs[r.ID] = true
	}
	if len(recs) != len(rep1.Trials) {
		t.Fatalf("journal has %d records, report absorbed %d", len(recs), len(rep1.Trials))
	}
	for _, tr := range rep1.Trials {
		if !walIDs[tr.ID] {
			t.Fatalf("trial %d absorbed but missing from journal", tr.ID)
		}
	}

	// Resume from the journal alone (no checkpoint was ever written) with
	// a fresh environment and optimizer: the pre-kill set is replayed, not
	// re-run, and the budget completes.
	env2 := newCountingEnv()
	o2 := optimizer.NewRandom(env2.sp, rand.New(rand.NewSource(22)))
	rep2, err := Resume(o2, env2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != len(recs) {
		t.Fatalf("resumed = %d, want %d", rep2.Resumed, len(recs))
	}
	if len(rep2.Trials) != 20 {
		t.Fatalf("final trials = %d, want 20", len(rep2.Trials))
	}
	if got, want := env2.runs.Load(), int64(20-len(recs)); got != want {
		t.Fatalf("resume ran env %d times, want %d (journaled trials must not re-run)", got, want)
	}
	seen := map[int]TrialRecord{}
	for _, tr := range rep2.Trials {
		if _, dup := seen[tr.ID]; dup {
			t.Fatalf("trial ID %d duplicated after resume", tr.ID)
		}
		seen[tr.ID] = tr
	}
	// Every journaled trial appears in the final report unchanged.
	for _, r := range recs {
		got, ok := seen[r.ID]
		if !ok {
			t.Fatalf("journaled trial %d lost on resume", r.ID)
		}
		if got.Value != r.Value || got.Config.Key() != r.Config.Key() {
			t.Fatalf("journaled trial %d mutated on resume: %+v vs %+v", r.ID, got, r)
		}
	}
	// The resumed session appended its new trials to the same WAL.
	recs2, err := ReadJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 20 {
		t.Fatalf("journal after resume has %d records, want 20", len(recs2))
	}
}

func TestJournalRoundTripDedupAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []TrialRecord{
		{ID: 2, Config: space.Config{"x": 0.2}, Value: 2},
		{ID: 0, Config: space.Config{"x": 0.0}, Value: 0},
		{ID: 1, Config: space.Config{"x": 0.1}, Value: 1},
		{ID: 1, Config: space.Config{"x": 0.9}, Value: 99}, // duplicate: first wins
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":9,"value":4.`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (deduped, torn tail dropped)", len(recs))
	}
	for i, r := range recs {
		if r.ID != i {
			t.Fatalf("record %d has ID %d, want sorted IDs", i, r.ID)
		}
	}
	if recs[1].Value != 1 {
		t.Fatalf("duplicate ID 1 resolved to value %v, want first occurrence 1", recs[1].Value)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if recs != nil {
		t.Fatalf("records = %v, want none", recs)
	}
}

// panickyEnv panics (an environment bug, not a benchmark result) for part
// of the space.
type panickyEnv struct{ sp *space.Space }

func (e *panickyEnv) Space() *space.Space { return e.sp }

func (e *panickyEnv) Run(ctx context.Context, cfg space.Config, fid float64) (Result, error) {
	if cfg.Float("x") > 0.8 {
		panic("simulated environment bug")
	}
	return Result{Value: math.Abs(cfg.Float("x") - 0.5), CostSeconds: 1}, nil
}

func TestRunPanicIsolatedAtTrialBoundary(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential", Options{Budget: 60}},
		{"scheduler", Options{Budget: 60, Parallel: 4, Scheduler: &sched.Options{}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := &panickyEnv{sp: space.MustNew(space.Float("x", 0, 1))}
			o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(4)))
			rep, err := Run(o, env, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Panics == 0 {
				t.Fatal("expected some panicking trials")
			}
			if rep.Panics != rep.Crashes {
				t.Fatalf("panics = %d, crashes = %d: every panic scores as a crash", rep.Panics, rep.Crashes)
			}
			if rep.BestConfig.Float("x") > 0.8 {
				t.Fatalf("best config %v is in the panic region", rep.BestConfig)
			}
			crashed := 0
			for _, tr := range rep.Trials {
				if tr.Crashed {
					crashed++
					if math.IsInf(tr.Value, 0) || math.IsNaN(tr.Value) {
						t.Fatalf("panicked trial %d recorded non-finite value %v", tr.ID, tr.Value)
					}
				}
			}
			if crashed != rep.Panics {
				t.Fatalf("crashed records = %d, panics = %d", crashed, rep.Panics)
			}
		})
	}
}

// TestSoakSchedulerTrialLoop stresses the full loop — hedging, crashes,
// an outlier host, and the WAL — and checks the exactly-once bookkeeping:
// no trial ID lost, duplicated, or absorbed outside its batch.
func TestSoakSchedulerTrialLoop(t *testing.T) {
	env := newCountingEnv()
	env.failEvery = 5
	wal := filepath.Join(t.TempDir(), "soak.wal")
	hosts := []cloud.HostProfile{{Mult: 1}, {Mult: 1}, {Mult: 4, Outlier: true}, {Mult: 1}}
	o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(11)))
	const budget, parallel = 160, 8
	rep, err := Run(o, env, Options{
		Budget:    budget,
		Parallel:  parallel,
		Journal:   wal,
		Scheduler: &sched.Options{Hosts: hosts, HedgeQuantile: 0.7, HedgeMinSamples: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != budget {
		t.Fatalf("trials = %d, want %d", len(rep.Trials), budget)
	}
	if rep.Crashes == 0 {
		t.Fatal("fault injection produced no crashes")
	}
	if rep.Hedges == 0 {
		t.Fatal("outlier host produced no hedges")
	}
	seen := map[int]bool{}
	for _, tr := range rep.Trials {
		if seen[tr.ID] {
			t.Fatalf("trial ID %d delivered twice", tr.ID)
		}
		seen[tr.ID] = true
	}
	for id := 0; id < budget; id++ {
		if !seen[id] {
			t.Fatalf("trial ID %d lost", id)
		}
	}
	// Completions may reorder within a batch but never across batches:
	// the loop is batch-synchronous even though absorption is not.
	for i, tr := range rep.Trials {
		if tr.ID/parallel != i/parallel {
			t.Fatalf("trial ID %d absorbed at position %d, outside its batch", tr.ID, i)
		}
	}
	recs, err := ReadJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != budget {
		t.Fatalf("journal has %d records, want %d", len(recs), budget)
	}
}
