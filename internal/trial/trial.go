// Package trial is the offline tuning loop: it wires an optimizer to an
// Environment (anything that can benchmark a configuration), handles
// crashes, early aborts, fidelity, and parallel trial execution, and
// records a persistent report — the "scheduler + system-specific scripts"
// box from the tutorial's architecture slide.
package trial

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"autotune/internal/optimizer"
	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/workload"

	"math/rand"
)

// Result is one benchmark measurement.
type Result struct {
	// Value is the objective (minimized).
	Value float64
	// Metrics holds auxiliary measurements by name.
	Metrics map[string]float64
	// CostSeconds is the (simulated or real) cost of the trial.
	CostSeconds float64
}

// Environment benchmarks configurations.
type Environment interface {
	// Space returns the tunable space.
	Space() *space.Space
	// Run benchmarks cfg at a fidelity in (0, 1]. Implementations should
	// wrap simsys.ErrCrash (or return ErrCrash) for crashed trials.
	Run(cfg space.Config, fidelity float64) (Result, error)
}

// Abortable is implemented by environments supporting early abort: the
// runner passes the threshold above which the trial is pointless, and the
// environment may stop early, returning aborted=true and the partial cost.
type Abortable interface {
	RunAbortable(cfg space.Config, fidelity, abortAbove float64) (res Result, aborted bool, err error)
}

// ErrCrash aliases simsys.ErrCrash so callers need not import simsys.
var ErrCrash = simsys.ErrCrash

// FuncEnv adapts a plain objective function to Environment.
type FuncEnv struct {
	Sp *space.Space
	F  func(cfg space.Config) float64
	// CostPerTrial is the simulated cost of each trial (default 1).
	CostPerTrial float64
}

// Space implements Environment.
func (e *FuncEnv) Space() *space.Space { return e.Sp }

// Run implements Environment.
func (e *FuncEnv) Run(cfg space.Config, fidelity float64) (Result, error) {
	cost := e.CostPerTrial
	if cost <= 0 {
		cost = 1
	}
	return Result{Value: e.F(cfg), CostSeconds: cost * math.Max(fidelity, 0.01)}, nil
}

// SystemEnv benchmarks a simulated system (internal/simsys) under a fixed
// workload; the objective is extracted from the metrics.
type SystemEnv struct {
	Sys simsys.System
	WL  workload.Descriptor
	// Objective extracts the score (default LatencyMS).
	Objective func(simsys.Metrics) float64
	// BaseDurationSec is the full-fidelity benchmark duration used as the
	// trial cost (default 300, a 5-minute benchmark).
	BaseDurationSec float64
	// Rng adds measurement noise; nil runs deterministically. Access is
	// serialized internally so the environment is safe under Parallel > 1.
	Rng *rand.Rand

	mu sync.Mutex
}

// Space implements Environment.
func (e *SystemEnv) Space() *space.Space { return e.Sys.Space() }

// Run implements Environment.
func (e *SystemEnv) Run(cfg space.Config, fidelity float64) (Result, error) {
	if fidelity <= 0 || fidelity > 1 {
		fidelity = 1
	}
	base := e.BaseDurationSec
	if base <= 0 {
		base = 300
	}
	e.mu.Lock()
	m, err := e.Sys.Run(cfg, e.WL, fidelity, e.Rng)
	e.mu.Unlock()
	if err != nil {
		return Result{CostSeconds: base * fidelity * 0.2}, err // crashes fail fast
	}
	obj := e.Objective
	if obj == nil {
		obj = func(m simsys.Metrics) float64 { return m.LatencyMS }
	}
	return Result{
		Value: obj(m),
		Metrics: map[string]float64{
			"throughput_ops": m.ThroughputOps,
			"latency_ms":     m.LatencyMS,
			"p95_ms":         m.P95MS,
			"cost_usd_hr":    m.CostUSDPerHour,
		},
		CostSeconds: base * fidelity,
	}, nil
}

// RunAbortable implements Abortable: an elapsed-time benchmark (think
// TPC-H) can be stopped once its projected score exceeds the threshold;
// the model charges cost proportional to the fraction actually run.
func (e *SystemEnv) RunAbortable(cfg space.Config, fidelity, abortAbove float64) (Result, bool, error) {
	res, err := e.Run(cfg, fidelity)
	if err != nil {
		return res, false, err
	}
	if !math.IsInf(abortAbove, 0) && res.Value > abortAbove {
		frac := abortAbove / res.Value // the run was cut at the threshold
		if frac < 0.05 {
			frac = 0.05
		}
		res.CostSeconds *= frac
		return res, true, nil
	}
	return res, false, nil
}

// Options configures a tuning run.
type Options struct {
	// Budget is the number of trials (required).
	Budget int
	// Parallel evaluates trials in synchronized batches of this size
	// (default 1 = sequential). Batch suggestions use
	// optimizer.BatchSuggester when available.
	Parallel int
	// Fidelity for all trials (default 1).
	Fidelity float64
	// AbortMargin, when > 0, enables early abort on Abortable
	// environments at threshold best*(1+AbortMargin).
	AbortMargin float64
	// CrashPenaltyFactor scores crashed trials at factor x the worst
	// finite value so far (default 2). The penalty keeps optimizers away
	// from the cliff without poisoning surrogates with infinities.
	CrashPenaltyFactor float64
}

// TrialRecord is one completed trial.
type TrialRecord struct {
	ID          int          `json:"id"`
	Config      space.Config `json:"config"`
	Value       float64      `json:"value"`
	CostSeconds float64      `json:"cost_seconds"`
	Crashed     bool         `json:"crashed,omitempty"`
	Aborted     bool         `json:"aborted,omitempty"`
}

// Report is a completed tuning session.
type Report struct {
	Trials []TrialRecord `json:"trials"`
	// BestConfig/BestValue track the best non-crashed trial.
	BestConfig space.Config `json:"best_config"`
	BestValue  float64      `json:"best_value"`
	// TotalCostSeconds sums trial costs; WallClockSeconds accounts for
	// parallelism (per-batch max instead of sum).
	TotalCostSeconds float64 `json:"total_cost_seconds"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	Crashes          int     `json:"crashes"`
	Aborts           int     `json:"aborts"`
}

// Run drives the optimizer against the environment for the full budget.
func Run(o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	if opts.Budget <= 0 {
		return Report{}, errors.New("trial: budget must be positive")
	}
	if opts.Parallel < 1 {
		opts.Parallel = 1
	}
	if opts.Fidelity <= 0 || opts.Fidelity > 1 {
		opts.Fidelity = 1
	}
	if opts.CrashPenaltyFactor <= 0 {
		opts.CrashPenaltyFactor = 2
	}
	var rep Report
	rep.BestValue = math.Inf(1)
	worstFinite := math.Inf(-1)
	id := 0
	for id < opts.Budget {
		n := opts.Parallel
		if rem := opts.Budget - id; n > rem {
			n = rem
		}
		batch, err := suggestBatch(o, n)
		if errors.Is(err, optimizer.ErrExhausted) {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("trial %d: %w", id, err)
		}
		results := runBatch(env, batch, opts, rep.BestValue)
		batchMaxCost := 0.0
		for i, cfg := range batch {
			r := results[i]
			rec := TrialRecord{
				ID:          id,
				Config:      cfg.Clone(),
				Value:       r.res.Value,
				CostSeconds: r.res.CostSeconds,
				Aborted:     r.aborted,
			}
			id++
			rep.TotalCostSeconds += r.res.CostSeconds
			if r.res.CostSeconds > batchMaxCost {
				batchMaxCost = r.res.CostSeconds
			}
			obsValue := r.res.Value
			if r.err != nil {
				rec.Crashed = true
				rep.Crashes++
				// Impute the penalty score (slide 67: "make it up").
				if math.IsInf(worstFinite, -1) {
					obsValue = 1e6
				} else {
					obsValue = opts.CrashPenaltyFactor * math.Max(worstFinite, math.Abs(worstFinite))
					if obsValue <= worstFinite {
						obsValue = worstFinite + 1
					}
				}
				rec.Value = obsValue
			} else {
				if obsValue > worstFinite {
					worstFinite = obsValue
				}
				if obsValue < rep.BestValue {
					rep.BestValue = obsValue
					rep.BestConfig = cfg.Clone()
				}
			}
			if r.aborted {
				rep.Aborts++
			}
			if err := o.Observe(cfg, obsValue); err != nil {
				return rep, fmt.Errorf("trial %d observe: %w", rec.ID, err)
			}
			rep.Trials = append(rep.Trials, rec)
		}
		rep.WallClockSeconds += batchMaxCost
	}
	if math.IsInf(rep.BestValue, 1) {
		return rep, errors.New("trial: no successful trials")
	}
	return rep, nil
}

func suggestBatch(o optimizer.Optimizer, n int) ([]space.Config, error) {
	if n == 1 {
		cfg, err := o.Suggest()
		if err != nil {
			return nil, err
		}
		return []space.Config{cfg}, nil
	}
	if bs, ok := o.(optimizer.BatchSuggester); ok {
		return bs.SuggestN(n)
	}
	out := make([]space.Config, 0, n)
	for i := 0; i < n; i++ {
		cfg, err := o.Suggest()
		if err != nil {
			if len(out) > 0 && errors.Is(err, optimizer.ErrExhausted) {
				break
			}
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

type trialOutcome struct {
	res     Result
	aborted bool
	err     error
}

// runBatch evaluates configurations concurrently (one goroutine each).
func runBatch(env Environment, batch []space.Config, opts Options, best float64) []trialOutcome {
	out := make([]trialOutcome, len(batch))
	abortAbove := math.Inf(1)
	if opts.AbortMargin > 0 && !math.IsInf(best, 1) {
		abortAbove = best * (1 + opts.AbortMargin)
	}
	if len(batch) == 1 {
		out[0] = runOne(env, batch[0], opts.Fidelity, abortAbove)
		return out
	}
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = runOne(env, batch[i], opts.Fidelity, abortAbove)
		}(i)
	}
	wg.Wait()
	return out
}

func runOne(env Environment, cfg space.Config, fidelity, abortAbove float64) trialOutcome {
	if ab, ok := env.(Abortable); ok && !math.IsInf(abortAbove, 1) {
		res, aborted, err := ab.RunAbortable(cfg, fidelity, abortAbove)
		return trialOutcome{res: res, aborted: aborted, err: err}
	}
	res, err := env.Run(cfg, fidelity)
	return trialOutcome{res: res, err: err}
}

// Save writes the report as JSON.
func (r Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("trial: marshal report: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("trial: write %s: %w", path, err)
	}
	return nil
}

// LoadReport reads a report written by Save.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("trial: read %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("trial: parse %s: %w", path, err)
	}
	return r, nil
}

// BestOverTime returns the running-best value after each trial — the
// convergence curve every experiment plots.
func (r Report) BestOverTime() []float64 {
	out := make([]float64, len(r.Trials))
	best := math.Inf(1)
	for i, t := range r.Trials {
		if !t.Crashed && t.Value < best {
			best = t.Value
		}
		out[i] = best
	}
	return out
}
