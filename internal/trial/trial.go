// Package trial is the offline tuning loop: it wires an optimizer to an
// Environment (anything that can benchmark a configuration), handles
// crashes, early aborts, fidelity, and parallel trial execution, and
// records a persistent report — the "scheduler + system-specific scripts"
// box from the tutorial's architecture slide.
//
// Trials are cancellable and deadline-bounded: Environment.Run takes a
// context.Context, RunContext aborts cleanly between batches when the
// context is cancelled, and Options.Checkpoint persists progress
// atomically so Resume can replay a killed session into a fresh optimizer
// without re-running completed trials. Fault-hardening wrappers (retry
// with backoff, per-trial deadlines, quarantine) live in
// internal/resilience.
package trial

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"autotune/internal/optimizer"
	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/workload"

	"math/rand"
)

// Result is one benchmark measurement.
type Result struct {
	// Value is the objective (minimized).
	Value float64
	// Metrics holds auxiliary measurements by name.
	Metrics map[string]float64
	// CostSeconds is the (simulated or real) cost of the trial.
	CostSeconds float64
}

// Environment benchmarks configurations.
type Environment interface {
	// Space returns the tunable space.
	Space() *space.Space
	// Run benchmarks cfg at a fidelity in (0, 1]. Implementations should
	// wrap simsys.ErrCrash (or return ErrCrash) for crashed trials, honor
	// ctx cancellation, and return an error wrapping
	// context.DeadlineExceeded for trials killed by a deadline.
	Run(ctx context.Context, cfg space.Config, fidelity float64) (Result, error)
}

// Abortable is implemented by environments supporting early abort: the
// runner passes the threshold above which the trial is pointless, and the
// environment may stop early, returning aborted=true and the partial cost.
type Abortable interface {
	RunAbortable(ctx context.Context, cfg space.Config, fidelity, abortAbove float64) (res Result, aborted bool, err error)
}

// ErrCrash aliases simsys.ErrCrash so callers need not import simsys.
var ErrCrash = simsys.ErrCrash

// FuncEnv adapts a plain objective function to Environment.
type FuncEnv struct {
	Sp *space.Space
	F  func(cfg space.Config) float64
	// CostPerTrial is the simulated cost of each trial (default 1).
	CostPerTrial float64
}

// Space implements Environment.
func (e *FuncEnv) Space() *space.Space { return e.Sp }

// Run implements Environment.
func (e *FuncEnv) Run(ctx context.Context, cfg space.Config, fidelity float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cost := e.CostPerTrial
	if cost <= 0 {
		cost = 1
	}
	return Result{Value: e.F(cfg), CostSeconds: cost * math.Max(fidelity, 0.01)}, nil
}

// SystemEnv benchmarks a simulated system (internal/simsys) under a fixed
// workload; the objective is extracted from the metrics.
type SystemEnv struct {
	Sys simsys.System
	WL  workload.Descriptor
	// Objective extracts the score (default LatencyMS).
	Objective func(simsys.Metrics) float64
	// BaseDurationSec is the full-fidelity benchmark duration used as the
	// trial cost (default 300, a 5-minute benchmark).
	BaseDurationSec float64
	// Rng seeds measurement noise; nil runs deterministically. The shared
	// stream is sampled exactly once to derive a base seed; each
	// evaluation then gets its own RNG keyed on (base seed, config,
	// fidelity) — common random numbers — so noise is independent of
	// goroutine scheduling under Parallel > 1 and identically-seeded runs
	// are bitwise-reproducible. Re-measuring the same config at the same
	// fidelity repeats the same measurement.
	Rng *rand.Rand

	mu        sync.Mutex
	seeded    bool
	noiseSeed int64
}

// noiseRng derives the per-evaluation noise source. Drawing from the
// shared e.Rng directly would hand out noise values in goroutine
// lock-acquisition order, making identically-seeded parallel runs
// diverge; hashing the config instead makes each trial's noise a pure
// function of the run seed and what is being measured.
func (e *SystemEnv) noiseRng(cfg space.Config, fidelity float64) *rand.Rand {
	e.mu.Lock()
	if !e.seeded {
		e.noiseSeed = e.Rng.Int63()
		e.seeded = true
	}
	seed := e.noiseSeed
	e.mu.Unlock()
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	key := cfg.Key()
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	bits := math.Float64bits(fidelity)
	for i := 0; i < 8; i++ {
		h ^= bits >> (8 * i) & 0xff
		h *= prime64
	}
	return rand.New(rand.NewSource(seed ^ int64(h)))
}

// Space implements Environment.
func (e *SystemEnv) Space() *space.Space { return e.Sys.Space() }

// Run implements Environment.
func (e *SystemEnv) Run(ctx context.Context, cfg space.Config, fidelity float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if fidelity <= 0 || fidelity > 1 {
		fidelity = 1
	}
	base := e.BaseDurationSec
	if base <= 0 {
		base = 300
	}
	var m simsys.Metrics
	var err error
	if e.Rng != nil {
		m, err = e.Sys.Run(cfg, e.WL, fidelity, e.noiseRng(cfg, fidelity))
	} else {
		m, err = e.Sys.Run(cfg, e.WL, fidelity, nil)
	}
	if err != nil {
		return Result{CostSeconds: base * fidelity * 0.2}, err // crashes fail fast
	}
	obj := e.Objective
	if obj == nil {
		obj = func(m simsys.Metrics) float64 { return m.LatencyMS }
	}
	return Result{
		Value: obj(m),
		Metrics: map[string]float64{
			"throughput_ops": m.ThroughputOps,
			"latency_ms":     m.LatencyMS,
			"p95_ms":         m.P95MS,
			"cost_usd_hr":    m.CostUSDPerHour,
		},
		CostSeconds: base * fidelity,
	}, nil
}

// RunAbortable implements Abortable: an elapsed-time benchmark (think
// TPC-H) can be stopped once its projected score exceeds the threshold;
// the model charges cost proportional to the fraction actually run.
func (e *SystemEnv) RunAbortable(ctx context.Context, cfg space.Config, fidelity, abortAbove float64) (Result, bool, error) {
	res, err := e.Run(ctx, cfg, fidelity)
	if err != nil {
		return res, false, err
	}
	if !math.IsInf(abortAbove, 0) && res.Value > abortAbove {
		frac := abortAbove / res.Value // the run was cut at the threshold
		if frac < 0.05 {
			frac = 0.05
		}
		res.CostSeconds *= frac
		return res, true, nil
	}
	return res, false, nil
}

// Options configures a tuning run.
type Options struct {
	// Budget is the number of trials (required).
	Budget int
	// Parallel evaluates trials in synchronized batches of this size
	// (default 1 = sequential). Batch suggestions use
	// optimizer.BatchSuggester when available.
	Parallel int
	// Fidelity for all trials (default 1).
	Fidelity float64
	// AbortMargin, when > 0, enables early abort on Abortable
	// environments at threshold best*(1+AbortMargin).
	AbortMargin float64
	// CrashPenaltyFactor scores crashed trials at factor x the worst
	// finite value so far (default 2). The penalty keeps optimizers away
	// from the cliff without poisoning surrogates with infinities.
	CrashPenaltyFactor float64
	// Checkpoint, when non-empty, persists the in-progress Report to this
	// path (atomic write) so a killed run can continue via Resume.
	Checkpoint string
	// CheckpointEvery is how many completed trials between checkpoint
	// writes (default: after every batch).
	CheckpointEvery int
	// DegradeAfterTimeouts, when > 0, halves the working fidelity after
	// this many consecutive timed-out trials (graceful degradation when
	// the environment is persistently too slow for its deadline).
	DegradeAfterTimeouts int
	// MinFidelity floors fidelity degradation (default 0.1).
	MinFidelity float64
}

func (o Options) withDefaults() (Options, error) {
	if o.Budget <= 0 {
		return o, errors.New("trial: budget must be positive")
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	if o.Fidelity <= 0 || o.Fidelity > 1 {
		o.Fidelity = 1
	}
	if o.CrashPenaltyFactor <= 0 {
		o.CrashPenaltyFactor = 2
	}
	if o.MinFidelity <= 0 {
		o.MinFidelity = 0.1
	}
	return o, nil
}

// TrialRecord is one completed trial.
type TrialRecord struct {
	ID          int          `json:"id"`
	Config      space.Config `json:"config"`
	Value       float64      `json:"value"`
	CostSeconds float64      `json:"cost_seconds"`
	Crashed     bool         `json:"crashed,omitempty"`
	Aborted     bool         `json:"aborted,omitempty"`
	TimedOut    bool         `json:"timed_out,omitempty"`
	// Fidelity records the fidelity the trial actually ran at (may be
	// below Options.Fidelity after graceful degradation).
	Fidelity float64 `json:"fidelity,omitempty"`
}

// Report is a completed tuning session.
type Report struct {
	Trials []TrialRecord `json:"trials"`
	// BestConfig/BestValue track the best non-crashed trial.
	BestConfig space.Config `json:"best_config"`
	BestValue  float64      `json:"best_value"`
	// TotalCostSeconds sums trial costs; WallClockSeconds accounts for
	// parallelism (per-batch max instead of sum).
	TotalCostSeconds float64 `json:"total_cost_seconds"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	Crashes          int     `json:"crashes"`
	Aborts           int     `json:"aborts"`
	// Timeouts counts trials killed by a deadline; Degradations counts
	// fidelity halvings triggered by consecutive timeouts.
	Timeouts     int `json:"timeouts,omitempty"`
	Degradations int `json:"degradations,omitempty"`
	// Resumed counts trials restored from a checkpoint rather than run.
	Resumed int `json:"resumed,omitempty"`
}

// Run drives the optimizer against the environment for the full budget.
func Run(o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	//autolint:ignore ctxpass public context-free convenience wrapper over RunContext
	return RunContext(context.Background(), o, env, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled the loop
// stops at the next batch boundary (the in-flight batch is discarded),
// writes a final checkpoint if one is configured, and returns the partial
// report together with the context's error.
func RunContext(ctx context.Context, o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.BestValue = math.Inf(1)
	return finishRun(runLoop(ctx, o, env, opts, &rep, math.Inf(-1)))
}

// Resume continues a tuning session from the checkpoint at
// opts.Checkpoint: the recorded trials are replayed into the optimizer
// (Observe only — the environment is not re-run), counters and the
// incumbent are restored, and the loop continues until the budget is
// reached. A checkpoint that already covers the budget returns
// immediately without touching the environment.
func Resume(o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	//autolint:ignore ctxpass public context-free convenience wrapper over ResumeContext
	return ResumeContext(context.Background(), o, env, opts)
}

// ResumeContext is Resume with cancellation.
func ResumeContext(ctx context.Context, o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return Report{}, err
	}
	if opts.Checkpoint == "" {
		return Report{}, errors.New("trial: resume needs Options.Checkpoint")
	}
	rep, err := LoadReport(opts.Checkpoint)
	if err != nil {
		return Report{}, fmt.Errorf("trial: resume: %w", err)
	}
	// Rebuild derived state from the trial log rather than trusting the
	// stored summary: the incumbent, the worst finite value (crash
	// penalty scale), and the optimizer's observation history.
	rep.BestValue = math.Inf(1)
	rep.BestConfig = nil
	worstFinite := math.Inf(-1)
	for _, tr := range rep.Trials {
		if !tr.Crashed {
			if tr.Value < rep.BestValue {
				rep.BestValue = tr.Value
				rep.BestConfig = tr.Config.Clone()
			}
			if tr.Value > worstFinite {
				worstFinite = tr.Value
			}
		}
		if err := o.Observe(tr.Config, tr.Value); err != nil {
			return rep, fmt.Errorf("trial: resume replay %d: %w", tr.ID, err)
		}
	}
	rep.Resumed = len(rep.Trials)
	if len(rep.Trials) >= opts.Budget {
		return finishRun(&rep, nil)
	}
	return finishRun(runLoop(ctx, o, env, opts, &rep, worstFinite))
}

// finishRun applies the terminal invariants shared by Run and Resume.
func finishRun(rep *Report, err error) (Report, error) {
	if err != nil {
		return *rep, err
	}
	if math.IsInf(rep.BestValue, 1) {
		return *rep, errors.New("trial: no successful trials")
	}
	return *rep, nil
}

// runLoop executes trials id=len(rep.Trials)..Budget-1, mutating rep.
func runLoop(ctx context.Context, o optimizer.Optimizer, env Environment, opts Options, rep *Report, worstFinite float64) (*Report, error) {
	id := len(rep.Trials)
	fid := opts.Fidelity
	consecTimeouts := 0
	sinceCheckpoint := 0
	checkpointEvery := opts.CheckpointEvery
	if checkpointEvery < 1 {
		checkpointEvery = 1 // every batch
	}
	checkpoint := func() {
		if opts.Checkpoint != "" {
			// A checkpoint failure must not kill the run it protects;
			// the next interval retries the write.
			//autolint:ignore droppederr checkpointing is best-effort by design
			_ = saveCheckpoint(*rep, opts.Checkpoint)
		}
	}
	for id < opts.Budget {
		if err := ctx.Err(); err != nil {
			checkpoint()
			return rep, err
		}
		n := opts.Parallel
		if rem := opts.Budget - id; n > rem {
			n = rem
		}
		batch, err := suggestBatch(o, n)
		if errors.Is(err, optimizer.ErrExhausted) {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("trial %d: %w", id, err)
		}
		results := runBatch(ctx, env, batch, opts, fid, rep.BestValue)
		if err := ctx.Err(); err != nil {
			// The batch raced with cancellation; its results are suspect
			// (environments may have returned early) — drop them and let
			// Resume re-run the batch.
			checkpoint()
			return rep, err
		}
		batchMaxCost := 0.0
		for i, cfg := range batch {
			r := results[i]
			rec := TrialRecord{
				ID:          id,
				Config:      cfg.Clone(),
				Value:       r.res.Value,
				CostSeconds: r.res.CostSeconds,
				Aborted:     r.aborted,
				Fidelity:    fid,
			}
			id++
			rep.TotalCostSeconds += r.res.CostSeconds
			if r.res.CostSeconds > batchMaxCost {
				batchMaxCost = r.res.CostSeconds
			}
			obsValue := r.res.Value
			if r.err != nil {
				rec.Crashed = true
				rep.Crashes++
				if errors.Is(r.err, context.DeadlineExceeded) {
					rec.TimedOut = true
					rep.Timeouts++
					consecTimeouts++
				}
				// Impute the penalty score (slide 67: "make it up").
				if math.IsInf(worstFinite, -1) {
					obsValue = 1e6
				} else {
					obsValue = opts.CrashPenaltyFactor * math.Max(worstFinite, math.Abs(worstFinite))
					if obsValue <= worstFinite {
						obsValue = worstFinite + 1
					}
				}
				rec.Value = obsValue
			} else {
				consecTimeouts = 0
				if obsValue > worstFinite {
					worstFinite = obsValue
				}
				if obsValue < rep.BestValue {
					rep.BestValue = obsValue
					rep.BestConfig = cfg.Clone()
				}
			}
			if r.aborted {
				rep.Aborts++
			}
			if err := o.Observe(cfg, obsValue); err != nil {
				return rep, fmt.Errorf("trial %d observe: %w", rec.ID, err)
			}
			rep.Trials = append(rep.Trials, rec)
		}
		rep.WallClockSeconds += batchMaxCost
		// Graceful degradation: a deadline the environment persistently
		// misses means the fidelity is too expensive for this host —
		// halve it instead of burning the rest of the budget on timeouts.
		if opts.DegradeAfterTimeouts > 0 && consecTimeouts >= opts.DegradeAfterTimeouts && fid > opts.MinFidelity {
			fid = math.Max(fid/2, opts.MinFidelity)
			rep.Degradations++
			consecTimeouts = 0
		}
		sinceCheckpoint += len(batch)
		if opts.Checkpoint != "" && sinceCheckpoint >= checkpointEvery {
			checkpoint()
			sinceCheckpoint = 0
		}
	}
	checkpoint()
	return rep, nil
}

func suggestBatch(o optimizer.Optimizer, n int) ([]space.Config, error) {
	if n == 1 {
		cfg, err := o.Suggest()
		if err != nil {
			return nil, err
		}
		return []space.Config{cfg}, nil
	}
	if bs, ok := o.(optimizer.BatchSuggester); ok {
		return bs.SuggestN(n)
	}
	out := make([]space.Config, 0, n)
	for i := 0; i < n; i++ {
		cfg, err := o.Suggest()
		if err != nil {
			if len(out) > 0 && errors.Is(err, optimizer.ErrExhausted) {
				break
			}
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

type trialOutcome struct {
	res     Result
	aborted bool
	err     error
}

// runBatch evaluates configurations concurrently (one goroutine each).
func runBatch(ctx context.Context, env Environment, batch []space.Config, opts Options, fidelity, best float64) []trialOutcome {
	out := make([]trialOutcome, len(batch))
	abortAbove := math.Inf(1)
	if opts.AbortMargin > 0 && !math.IsInf(best, 1) {
		abortAbove = best * (1 + opts.AbortMargin)
	}
	if len(batch) == 1 {
		out[0] = runOne(ctx, env, batch[0], fidelity, abortAbove)
		return out
	}
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = runOne(ctx, env, batch[i], fidelity, abortAbove)
		}(i)
	}
	wg.Wait()
	return out
}

func runOne(ctx context.Context, env Environment, cfg space.Config, fidelity, abortAbove float64) trialOutcome {
	if ab, ok := env.(Abortable); ok && !math.IsInf(abortAbove, 1) {
		res, aborted, err := ab.RunAbortable(ctx, cfg, fidelity, abortAbove)
		return trialOutcome{res: res, aborted: aborted, err: err}
	}
	res, err := env.Run(ctx, cfg, fidelity)
	return trialOutcome{res: res, err: err}
}

// saveCheckpoint persists an in-progress report, sanitizing the +Inf
// incumbent a run that has not yet succeeded carries (JSON cannot encode
// infinities; Resume recomputes the incumbent from the trial log anyway).
func saveCheckpoint(r Report, path string) error {
	if math.IsInf(r.BestValue, 0) || math.IsNaN(r.BestValue) {
		r.BestValue = 0
		r.BestConfig = nil
	}
	return r.Save(path)
}

// Save writes the report as JSON. The write is crash-safe: data goes to a
// temp file in the target directory first and is renamed into place, so a
// reader (or a resumed run) never observes a torn file.
func (r Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("trial: marshal report: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".report-*.tmp")
	if err != nil {
		return fmt.Errorf("trial: temp file in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("trial: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("trial: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("trial: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("trial: rename to %s: %w", path, err)
	}
	return nil
}

// LoadReport reads a report written by Save.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("trial: read %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("trial: parse %s: %w", path, err)
	}
	return r, nil
}

// BestOverTime returns the running-best value after each trial — the
// convergence curve every experiment plots.
func (r Report) BestOverTime() []float64 {
	out := make([]float64, len(r.Trials))
	best := math.Inf(1)
	for i, t := range r.Trials {
		if !t.Crashed && t.Value < best {
			best = t.Value
		}
		out[i] = best
	}
	return out
}
