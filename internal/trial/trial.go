// Package trial is the offline tuning loop: it wires an optimizer to an
// Environment (anything that can benchmark a configuration), handles
// crashes, early aborts, fidelity, and parallel trial execution, and
// records a persistent report — the "scheduler + system-specific scripts"
// box from the tutorial's architecture slide.
//
// Trials are cancellable and deadline-bounded: Environment.Run takes a
// context.Context, RunContext aborts cleanly between batches when the
// context is cancelled, and Options.Checkpoint persists progress
// atomically so Resume can replay a killed session into a fresh optimizer
// without re-running completed trials. Fault-hardening wrappers (retry
// with backoff, per-trial deadlines, quarantine) live in
// internal/resilience.
package trial

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"autotune/internal/optimizer"
	"autotune/internal/sched"
	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/workload"

	"math/rand"
)

// Result is one benchmark measurement.
type Result struct {
	// Value is the objective (minimized).
	Value float64
	// Metrics holds auxiliary measurements by name.
	Metrics map[string]float64
	// CostSeconds is the (simulated or real) cost of the trial.
	CostSeconds float64
}

// Environment benchmarks configurations.
type Environment interface {
	// Space returns the tunable space.
	Space() *space.Space
	// Run benchmarks cfg at a fidelity in (0, 1]. Implementations should
	// wrap simsys.ErrCrash (or return ErrCrash) for crashed trials, honor
	// ctx cancellation, and return an error wrapping
	// context.DeadlineExceeded for trials killed by a deadline.
	Run(ctx context.Context, cfg space.Config, fidelity float64) (Result, error)
}

// Abortable is implemented by environments supporting early abort: the
// runner passes the threshold above which the trial is pointless, and the
// environment may stop early, returning aborted=true and the partial cost.
type Abortable interface {
	RunAbortable(ctx context.Context, cfg space.Config, fidelity, abortAbove float64) (res Result, aborted bool, err error)
}

// ErrCrash aliases simsys.ErrCrash so callers need not import simsys.
var ErrCrash = simsys.ErrCrash

// ErrPanic aliases sched.ErrPanic: a trial whose Environment panicked is
// recovered at the trial boundary and scored as a crash; the record's
// error wraps this sentinel together with the panic value and stack.
var ErrPanic = sched.ErrPanic

// FuncEnv adapts a plain objective function to Environment.
type FuncEnv struct {
	Sp *space.Space
	F  func(cfg space.Config) float64
	// CostPerTrial is the simulated cost of each trial (default 1).
	CostPerTrial float64
}

// Space implements Environment.
func (e *FuncEnv) Space() *space.Space { return e.Sp }

// Run implements Environment.
func (e *FuncEnv) Run(ctx context.Context, cfg space.Config, fidelity float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cost := e.CostPerTrial
	if cost <= 0 {
		cost = 1
	}
	return Result{Value: e.F(cfg), CostSeconds: cost * math.Max(fidelity, 0.01)}, nil
}

// SystemEnv benchmarks a simulated system (internal/simsys) under a fixed
// workload; the objective is extracted from the metrics.
type SystemEnv struct {
	Sys simsys.System
	WL  workload.Descriptor
	// Objective extracts the score (default LatencyMS).
	Objective func(simsys.Metrics) float64
	// BaseDurationSec is the full-fidelity benchmark duration used as the
	// trial cost (default 300, a 5-minute benchmark).
	BaseDurationSec float64
	// Rng seeds measurement noise; nil runs deterministically. The shared
	// stream is sampled exactly once to derive a base seed; each
	// evaluation then gets its own RNG keyed on (base seed, config,
	// fidelity) — common random numbers — so noise is independent of
	// goroutine scheduling under Parallel > 1 and identically-seeded runs
	// are bitwise-reproducible. Re-measuring the same config at the same
	// fidelity repeats the same measurement.
	Rng *rand.Rand

	mu        sync.Mutex
	seeded    bool
	noiseSeed int64
}

// noiseRng derives the per-evaluation noise source. Drawing from the
// shared e.Rng directly would hand out noise values in goroutine
// lock-acquisition order, making identically-seeded parallel runs
// diverge; hashing the config instead makes each trial's noise a pure
// function of the run seed and what is being measured.
func (e *SystemEnv) noiseRng(cfg space.Config, fidelity float64) *rand.Rand {
	e.mu.Lock()
	if !e.seeded {
		e.noiseSeed = e.Rng.Int63()
		e.seeded = true
	}
	seed := e.noiseSeed
	e.mu.Unlock()
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	key := cfg.Key()
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	bits := math.Float64bits(fidelity)
	for i := 0; i < 8; i++ {
		h ^= bits >> (8 * i) & 0xff
		h *= prime64
	}
	return rand.New(rand.NewSource(seed ^ int64(h)))
}

// Space implements Environment.
func (e *SystemEnv) Space() *space.Space { return e.Sys.Space() }

// Run implements Environment.
func (e *SystemEnv) Run(ctx context.Context, cfg space.Config, fidelity float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if fidelity <= 0 || fidelity > 1 {
		fidelity = 1
	}
	base := e.BaseDurationSec
	if base <= 0 {
		base = 300
	}
	var m simsys.Metrics
	var err error
	if e.Rng != nil {
		m, err = e.Sys.Run(cfg, e.WL, fidelity, e.noiseRng(cfg, fidelity))
	} else {
		m, err = e.Sys.Run(cfg, e.WL, fidelity, nil)
	}
	if err != nil {
		return Result{CostSeconds: base * fidelity * 0.2}, err // crashes fail fast
	}
	obj := e.Objective
	if obj == nil {
		obj = func(m simsys.Metrics) float64 { return m.LatencyMS }
	}
	return Result{
		Value: obj(m),
		Metrics: map[string]float64{
			"throughput_ops": m.ThroughputOps,
			"latency_ms":     m.LatencyMS,
			"p95_ms":         m.P95MS,
			"cost_usd_hr":    m.CostUSDPerHour,
		},
		CostSeconds: base * fidelity,
	}, nil
}

// RunAbortable implements Abortable: an elapsed-time benchmark (think
// TPC-H) can be stopped once its projected score exceeds the threshold;
// the model charges cost proportional to the fraction actually run.
func (e *SystemEnv) RunAbortable(ctx context.Context, cfg space.Config, fidelity, abortAbove float64) (Result, bool, error) {
	res, err := e.Run(ctx, cfg, fidelity)
	if err != nil {
		return res, false, err
	}
	if !math.IsInf(abortAbove, 0) && res.Value > abortAbove {
		frac := abortAbove / res.Value // the run was cut at the threshold
		if frac < 0.05 {
			frac = 0.05
		}
		res.CostSeconds *= frac
		return res, true, nil
	}
	return res, false, nil
}

// Options configures a tuning run.
type Options struct {
	// Budget is the number of trials (required).
	Budget int
	// Parallel evaluates trials in synchronized batches of this size
	// (default 1 = sequential). Batch suggestions use
	// optimizer.BatchSuggester when available.
	Parallel int
	// Fidelity for all trials (default 1).
	Fidelity float64
	// AbortMargin, when > 0, enables early abort on Abortable
	// environments at threshold best*(1+AbortMargin).
	AbortMargin float64
	// CrashPenaltyFactor scores crashed trials at factor x the worst
	// finite value so far (default 2). The penalty keeps optimizers away
	// from the cliff without poisoning surrogates with infinities.
	CrashPenaltyFactor float64
	// Checkpoint, when non-empty, persists the in-progress Report to this
	// path (atomic write) so a killed run can continue via Resume.
	Checkpoint string
	// CheckpointEvery is how many completed trials between checkpoint
	// writes (default: after every batch).
	CheckpointEvery int
	// DegradeAfterTimeouts, when > 0, halves the working fidelity after
	// this many consecutive timed-out trials (graceful degradation when
	// the environment is persistently too slow for its deadline).
	DegradeAfterTimeouts int
	// MinFidelity floors fidelity degradation (default 0.1).
	MinFidelity float64
	// Scheduler, when non-nil, replaces the synchronized batch barrier
	// with the supervised asynchronous pool from internal/sched: bounded
	// workers mapped onto host slots, panic isolation, straggler hedging,
	// quarantine-aware placement, and graceful drain. Parallel still sets
	// the batch size; Scheduler.Workers defaults to Parallel. The default
	// virtual clock keeps identically-seeded runs bitwise identical.
	Scheduler *sched.Options
	// HedgeQuantile in (0,1) is a convenience knob: it enables the
	// scheduler (with defaults) and hedges trials that run past this
	// quantile of recent trial durations. Ignored when Scheduler already
	// sets its own quantile.
	HedgeQuantile float64
	// Journal, when non-empty, appends every completed trial as one
	// fsync'd JSON line to this write-ahead log *before* the optimizer
	// observes it. A run killed mid-batch resumes from the journal with
	// every finished trial intact; see Resume.
	Journal string
	// Store, when non-empty, journals every completed trial into the
	// crash-safe segmented study store at this directory instead of a v0
	// single-file journal (internal/studystore: CRC-framed records,
	// fsync barriers, snapshot compaction, quarantined corruption).
	// Takes precedence over Journal when both are set.
	Store string
	// Study names the study within Store that this run's trials belong
	// to; empty means "default". Ignored unless Store is set.
	Study string
	// Sink, when non-nil, overrides Journal and Store with a custom
	// write-ahead sink. The caller owns its lifecycle — the run does not
	// Close it.
	Sink JournalSink
	// DedupEvals enables the single-flight evaluation cache: when the
	// optimizer re-suggests a (config, fidelity) pair that already
	// completed successfully, the cached measurement is reused at zero
	// cost instead of re-running the environment, and concurrent
	// duplicates within a batch wait for the first rather than racing.
	// Each reuse still produces its own journaled trial record (marked
	// CacheHit), so replay and live accounting agree. Off by default:
	// noisy real environments may want fresh measurements of repeated
	// configs.
	DedupEvals bool
}

func (o Options) withDefaults() (Options, error) {
	if o.Budget <= 0 {
		return o, errors.New("trial: budget must be positive")
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	if o.Fidelity <= 0 || o.Fidelity > 1 {
		o.Fidelity = 1
	}
	if o.CrashPenaltyFactor <= 0 {
		o.CrashPenaltyFactor = 2
	}
	if o.MinFidelity <= 0 {
		o.MinFidelity = 0.1
	}
	if o.HedgeQuantile < 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0
	}
	if o.Scheduler == nil && o.HedgeQuantile > 0 {
		o.Scheduler = &sched.Options{}
	}
	if o.Scheduler != nil {
		sc := *o.Scheduler // default a copy; the caller's struct stays untouched
		if sc.HedgeQuantile == 0 {
			sc.HedgeQuantile = o.HedgeQuantile
		}
		if sc.Workers <= 0 {
			if len(sc.Hosts) > 0 {
				sc.Workers = len(sc.Hosts)
			} else {
				sc.Workers = o.Parallel
			}
		}
		o.Scheduler = &sc
	}
	return o, nil
}

// TrialRecord is one completed trial.
type TrialRecord struct {
	ID          int          `json:"id"`
	Config      space.Config `json:"config"`
	Value       float64      `json:"value"`
	CostSeconds float64      `json:"cost_seconds"`
	Crashed     bool         `json:"crashed,omitempty"`
	Aborted     bool         `json:"aborted,omitempty"`
	TimedOut    bool         `json:"timed_out,omitempty"`
	// Fidelity records the fidelity the trial actually ran at (may be
	// below Options.Fidelity after graceful degradation).
	Fidelity float64 `json:"fidelity,omitempty"`
	// Hedged marks trials where the scheduler launched a duplicate
	// attempt; the recorded result is the winner's.
	Hedged bool `json:"hedged,omitempty"`
	// CacheHit marks trials satisfied by the evaluation cache: the value
	// comes from an earlier identical trial and CostSeconds is zero.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Metrics carries auxiliary measurements by name (Result.Metrics for
	// environment-run trials, client-reported metrics for service-side
	// observes). Secondary objectives for Pareto queries ride here.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is a completed tuning session.
type Report struct {
	Trials []TrialRecord `json:"trials"`
	// BestConfig/BestValue track the best non-crashed trial.
	BestConfig space.Config `json:"best_config"`
	BestValue  float64      `json:"best_value"`
	// TotalCostSeconds sums trial costs; WallClockSeconds accounts for
	// parallelism (per-batch max instead of sum).
	TotalCostSeconds float64 `json:"total_cost_seconds"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	Crashes          int     `json:"crashes"`
	Aborts           int     `json:"aborts"`
	// Timeouts counts trials killed by a deadline; Degradations counts
	// fidelity halvings triggered by consecutive timeouts.
	Timeouts     int `json:"timeouts,omitempty"`
	Degradations int `json:"degradations,omitempty"`
	// Resumed counts trials restored from a checkpoint rather than run.
	Resumed int `json:"resumed,omitempty"`
	// Hedges counts duplicate attempts launched by the scheduler;
	// HedgeWins counts trials where the duplicate finished first.
	Hedges    int `json:"hedges,omitempty"`
	HedgeWins int `json:"hedge_wins,omitempty"`
	// Panics counts trials whose environment panicked (recovered at the
	// trial boundary and scored as crashes).
	Panics int `json:"panics,omitempty"`
	// CacheHits counts trials satisfied by the evaluation cache
	// (Options.DedupEvals) without running the environment.
	CacheHits int `json:"cache_hits,omitempty"`
}

// Run drives the optimizer against the environment for the full budget.
func Run(o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	//autolint:ignore ctxpass public context-free convenience wrapper over RunContext
	return RunContext(context.Background(), o, env, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled the loop
// stops at the next batch boundary (the in-flight batch is discarded),
// writes a final checkpoint if one is configured, and returns the partial
// report together with the context's error.
func RunContext(ctx context.Context, o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.BestValue = math.Inf(1)
	return finishRun(runLoop(ctx, o, env, opts, &rep, math.Inf(-1)))
}

// Resume continues a tuning session from the checkpoint at
// opts.Checkpoint and/or the write-ahead journal at opts.Journal (or the
// segmented study store at opts.Store): the
// recorded trials are replayed into the optimizer (Observe only — the
// environment is not re-run), counters and the incumbent are restored,
// and the loop continues until the budget is reached. The journal is the
// finer-grained source: it holds trials from a batch that was killed
// before its checkpoint was written, so a mid-batch kill loses zero
// finished trials and re-runs none of them. A history that already
// covers the budget returns immediately without touching the
// environment.
func Resume(o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	//autolint:ignore ctxpass public context-free convenience wrapper over ResumeContext
	return ResumeContext(context.Background(), o, env, opts)
}

// ResumeContext is Resume with cancellation.
func ResumeContext(ctx context.Context, o optimizer.Optimizer, env Environment, opts Options) (Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return Report{}, err
	}
	if opts.Checkpoint == "" && opts.Journal == "" && opts.Store == "" {
		return Report{}, errors.New("trial: resume needs Options.Checkpoint, Options.Journal, or Options.Store")
	}
	var rep Report
	if opts.Checkpoint != "" {
		rep, err = LoadReport(opts.Checkpoint)
		if err != nil {
			return Report{}, fmt.Errorf("trial: resume: %w", err)
		}
	}
	if opts.Journal != "" {
		recs, err := ReadJournal(opts.Journal)
		if err != nil {
			return Report{}, fmt.Errorf("trial: resume: %w", err)
		}
		mergeJournal(&rep, recs)
	}
	if opts.Store != "" {
		recs, err := ReadStudyJournal(opts.Store, opts.Study)
		if err != nil {
			return Report{}, fmt.Errorf("trial: resume: %w", err)
		}
		mergeJournal(&rep, recs)
	}
	// Rebuild derived state from the trial log rather than trusting the
	// stored summary: the incumbent, the worst finite value (crash
	// penalty scale), and the optimizer's observation history.
	rep.BestValue = math.Inf(1)
	rep.BestConfig = nil
	worstFinite := math.Inf(-1)
	for _, tr := range rep.Trials {
		if !tr.Crashed {
			if tr.Value < rep.BestValue {
				rep.BestValue = tr.Value
				rep.BestConfig = tr.Config.Clone()
			}
			if tr.Value > worstFinite {
				worstFinite = tr.Value
			}
		}
		if err := o.Observe(tr.Config, tr.Value); err != nil {
			return rep, fmt.Errorf("trial: resume replay %d: %w", tr.ID, err)
		}
	}
	rep.Resumed = len(rep.Trials)
	if len(rep.Trials) >= opts.Budget {
		return finishRun(&rep, nil)
	}
	return finishRun(runLoop(ctx, o, env, opts, &rep, worstFinite))
}

// mergeJournal folds journal records the checkpoint does not cover into
// the report. Records are already ID-deduplicated by ReadJournal;
// duplicates against the checkpoint are dropped here, so the merged
// trial set contains each completed trial exactly once.
func mergeJournal(rep *Report, recs []TrialRecord) {
	seen := make(map[int]bool, len(rep.Trials))
	for _, tr := range rep.Trials {
		seen[tr.ID] = true
	}
	for _, rec := range recs {
		if seen[rec.ID] {
			continue
		}
		seen[rec.ID] = true
		rep.Trials = append(rep.Trials, rec)
		rep.TotalCostSeconds += rec.CostSeconds
		if rec.Crashed {
			rep.Crashes++
			if rec.TimedOut {
				rep.Timeouts++
			}
		}
		if rec.Aborted {
			rep.Aborts++
		}
		if rec.CacheHit {
			rep.CacheHits++
		}
	}
}

// finishRun applies the terminal invariants shared by Run and Resume.
func finishRun(rep *Report, err error) (Report, error) {
	if err != nil {
		return *rep, err
	}
	if math.IsInf(rep.BestValue, 1) {
		return *rep, errors.New("trial: no successful trials")
	}
	return *rep, nil
}

// runState carries the mutable loop state shared by the barrier and
// scheduler execution paths.
type runState struct {
	opts           Options
	o              optimizer.Optimizer
	rep            *Report
	journal        JournalSink
	cache          *evalCache // nil unless Options.DedupEvals
	worstFinite    float64
	consecTimeouts int
	// nextID is the next trial ID to assign. It starts past the largest
	// recorded ID (not at len(Trials)): a resumed journal may have gaps
	// where a drained batch pre-assigned IDs that never completed, and
	// those must not be reused for different configs.
	nextID int
}

// nextTrialID returns one past the largest recorded trial ID.
func nextTrialID(trials []TrialRecord) int {
	next := 0
	for _, t := range trials {
		if t.ID >= next {
			next = t.ID + 1
		}
	}
	return next
}

// absorb finalizes one completed trial: impute the crash penalty, update
// the incumbent and timeout counters, make the record durable, report it
// to the optimizer, and append it to the report. Order is the WAL
// contract: the journal append happens *before* Observe, so any trial
// the optimizer has seen is recoverable after a kill.
func (s *runState) absorb(cfg space.Config, r trialOutcome, id int, fid float64, hedged bool) error {
	rec := TrialRecord{
		ID:          id,
		Config:      cfg.Clone(),
		Value:       r.res.Value,
		CostSeconds: r.res.CostSeconds,
		Aborted:     r.aborted,
		Fidelity:    fid,
		Hedged:      hedged,
		CacheHit:    r.cacheHit,
		Metrics:     r.res.Metrics,
	}
	s.rep.TotalCostSeconds += r.res.CostSeconds
	if r.cacheHit {
		s.rep.CacheHits++
	}
	obsValue := r.res.Value
	if r.err != nil {
		rec.Crashed = true
		s.rep.Crashes++
		if errors.Is(r.err, ErrPanic) {
			s.rep.Panics++
		}
		if errors.Is(r.err, context.DeadlineExceeded) {
			rec.TimedOut = true
			s.rep.Timeouts++
			s.consecTimeouts++
		}
		// Impute the penalty score (slide 67: "make it up").
		if math.IsInf(s.worstFinite, -1) {
			obsValue = 1e6
		} else {
			obsValue = s.opts.CrashPenaltyFactor * math.Max(s.worstFinite, math.Abs(s.worstFinite))
			if obsValue <= s.worstFinite {
				obsValue = s.worstFinite + 1
			}
		}
		rec.Value = obsValue
	} else {
		s.consecTimeouts = 0
		if obsValue > s.worstFinite {
			s.worstFinite = obsValue
		}
		if obsValue < s.rep.BestValue {
			s.rep.BestValue = obsValue
			s.rep.BestConfig = cfg.Clone()
		}
	}
	if r.aborted {
		s.rep.Aborts++
	}
	if s.journal != nil {
		if err := s.journal.Append(rec); err != nil {
			return err
		}
	}
	if err := s.o.Observe(cfg, obsValue); err != nil {
		return fmt.Errorf("trial %d observe: %w", rec.ID, err)
	}
	s.rep.Trials = append(s.rep.Trials, rec)
	return nil
}

// runBarrierBatch is the legacy synchronized path: evaluate the whole
// batch, wait for every trial, absorb results in batch order.
func (s *runState) runBarrierBatch(ctx context.Context, env Environment, batch []space.Config, fid float64) error {
	results := runBatch(ctx, env, s.cache, batch, s.opts, fid, s.rep.BestValue)
	if err := ctx.Err(); err != nil {
		// The batch raced with cancellation; its results are suspect
		// (environments may have returned early) — drop them and let
		// Resume re-run the batch.
		return err
	}
	batchMaxCost := 0.0
	for i, cfg := range batch {
		if results[i].res.CostSeconds > batchMaxCost {
			batchMaxCost = results[i].res.CostSeconds
		}
		if err := s.absorb(cfg, results[i], s.nextID, fid, false); err != nil {
			return err
		}
		s.nextID++
	}
	s.rep.WallClockSeconds += batchMaxCost
	return nil
}

// runSchedBatch routes the batch through the asynchronous pool:
// completions are absorbed (journaled, observed) as they finish rather
// than at a barrier, so a kill mid-batch keeps every finished trial. On
// drain, attempts that observed the cancellation are dropped — their
// results are context errors, not measurements — and their pre-assigned
// IDs are retired unused.
func (s *runState) runSchedBatch(ctx context.Context, pool *sched.Pool, env Environment, batch []space.Config, fid float64) error {
	abortAbove := math.Inf(1)
	if s.opts.AbortMargin > 0 && !math.IsInf(s.rep.BestValue, 1) {
		abortAbove = s.rep.BestValue * (1 + s.opts.AbortMargin)
	}
	exec := func(actx context.Context, task, attempt int) sched.Attempt {
		var out trialOutcome
		if attempt == 0 {
			out = runOneCached(actx, env, s.cache, batch[task], fid, abortAbove)
		} else {
			// Hedge duplicates exist to race a straggling primary; routing
			// them through the cache would make them wait on that same
			// primary instead of independently re-running it.
			out = runOne(actx, env, batch[task], fid, abortAbove)
		}
		return sched.Attempt{Cost: out.res.CostSeconds, Err: out.err, Payload: out}
	}
	baseID := s.nextID
	s.nextID += len(batch)
	before := pool.Stats()
	var absorbErr error
	elapsed, runErr := pool.Run(ctx, len(batch), exec, func(c sched.Completion) {
		if absorbErr != nil {
			return
		}
		out, ok := c.Result.Payload.(trialOutcome)
		if !ok {
			// The pool's own guard caught a panic below runOne's recovery
			// (scheduler bug territory); keep the error, lose no trial.
			out = trialOutcome{err: c.Result.Err}
		}
		if ctx.Err() != nil && out.err != nil && errors.Is(out.err, ctx.Err()) {
			return
		}
		// Charge the time the trial actually burned on its host slot
		// (the reported cost scaled by the host's speed multiplier),
		// plus whatever a cancelled duplicate wasted.
		out.res.CostSeconds = c.Cost
		s.rep.TotalCostSeconds += c.Waste
		absorbErr = s.absorb(batch[c.Task], out, baseID+c.Task, fid, c.Hedged)
	})
	s.rep.WallClockSeconds += elapsed
	after := pool.Stats()
	s.rep.Hedges += after.Hedges - before.Hedges
	s.rep.HedgeWins += after.HedgeWins - before.HedgeWins
	if absorbErr != nil {
		return absorbErr
	}
	return runErr
}

// runLoop executes trials until the budget is reached, mutating rep.
func runLoop(ctx context.Context, o optimizer.Optimizer, env Environment, opts Options, rep *Report, worstFinite float64) (*Report, error) {
	s := &runState{opts: opts, o: o, rep: rep, worstFinite: worstFinite, nextID: nextTrialID(rep.Trials)}
	if opts.DedupEvals {
		s.cache = newEvalCache()
		// On resume, completed measurements re-warm the cache so a config
		// already paid for before the kill is never re-run. Failed trials
		// stay uncached: crashes and timeouts may be transient, and an
		// aborted value is a truncated measurement.
		for _, tr := range rep.Trials {
			if tr.Crashed || tr.Aborted || tr.TimedOut || tr.CacheHit {
				continue
			}
			fid := tr.Fidelity
			if fid == 0 {
				fid = opts.Fidelity
			}
			s.cache.prime(evalKey{cfg: tr.Config.Key(), fidelity: fid},
				Result{Value: tr.Value, CostSeconds: tr.CostSeconds})
		}
	}
	switch {
	case opts.Sink != nil:
		s.journal = opts.Sink
	case opts.Store != "":
		sj, err := OpenStudyJournal(opts.Store, opts.Study)
		if err != nil {
			return rep, err
		}
		defer sj.Close()
		s.journal = sj
	case opts.Journal != "":
		j, err := OpenJournal(opts.Journal)
		if err != nil {
			return rep, err
		}
		defer j.Close()
		s.journal = j
	}
	var pool *sched.Pool
	if opts.Scheduler != nil {
		pool = sched.New(*opts.Scheduler)
	}
	fid := opts.Fidelity
	sinceCheckpoint := 0
	checkpointEvery := opts.CheckpointEvery
	if checkpointEvery < 1 {
		checkpointEvery = 1 // every batch
	}
	checkpoint := func() {
		if opts.Checkpoint != "" {
			// A checkpoint failure must not kill the run it protects;
			// the next interval retries the write.
			//autolint:ignore droppederr checkpointing is best-effort by design
			_ = saveCheckpoint(*rep, opts.Checkpoint)
		}
	}
	for len(rep.Trials) < opts.Budget {
		if err := ctx.Err(); err != nil {
			checkpoint()
			return rep, err
		}
		n := opts.Parallel
		if rem := opts.Budget - len(rep.Trials); n > rem {
			n = rem
		}
		batch, err := suggestBatch(o, n)
		if errors.Is(err, optimizer.ErrExhausted) {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("trial %d: %w", s.nextID, err)
		}
		if pool != nil {
			err = s.runSchedBatch(ctx, pool, env, batch, fid)
		} else {
			err = s.runBarrierBatch(ctx, env, batch, fid)
		}
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				// Cancellation: persist what was absorbed before leaving.
				checkpoint()
			}
			return rep, err
		}
		// Graceful degradation: a deadline the environment persistently
		// misses means the fidelity is too expensive for this host —
		// halve it instead of burning the rest of the budget on timeouts.
		if opts.DegradeAfterTimeouts > 0 && s.consecTimeouts >= opts.DegradeAfterTimeouts && fid > opts.MinFidelity {
			fid = math.Max(fid/2, opts.MinFidelity)
			rep.Degradations++
			s.consecTimeouts = 0
		}
		sinceCheckpoint += len(batch)
		if opts.Checkpoint != "" && sinceCheckpoint >= checkpointEvery {
			checkpoint()
			sinceCheckpoint = 0
		}
	}
	checkpoint()
	return rep, nil
}

func suggestBatch(o optimizer.Optimizer, n int) ([]space.Config, error) {
	if n == 1 {
		cfg, err := o.Suggest()
		if err != nil {
			return nil, err
		}
		return []space.Config{cfg}, nil
	}
	if bs, ok := o.(optimizer.BatchSuggester); ok {
		return bs.SuggestN(n)
	}
	out := make([]space.Config, 0, n)
	for i := 0; i < n; i++ {
		cfg, err := o.Suggest()
		if err != nil {
			if len(out) > 0 && errors.Is(err, optimizer.ErrExhausted) {
				break
			}
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

type trialOutcome struct {
	res      Result
	aborted  bool
	err      error
	cacheHit bool
}

// runBatch evaluates configurations concurrently (one goroutine each).
func runBatch(ctx context.Context, env Environment, cache *evalCache, batch []space.Config, opts Options, fidelity, best float64) []trialOutcome {
	out := make([]trialOutcome, len(batch))
	abortAbove := math.Inf(1)
	if opts.AbortMargin > 0 && !math.IsInf(best, 1) {
		abortAbove = best * (1 + opts.AbortMargin)
	}
	if len(batch) == 1 {
		out[0] = runOneCached(ctx, env, cache, batch[0], fidelity, abortAbove)
		return out
	}
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		//autolint:ignore nakedgo runOne recovers environment panics at the trial boundary
		go func(i int) {
			defer wg.Done()
			out[i] = runOneCached(ctx, env, cache, batch[i], fidelity, abortAbove)
		}(i)
	}
	wg.Wait()
	return out
}

// runOne evaluates a single configuration. A panic inside the
// Environment — a bug, not a benchmark result — must not unwind the
// tuning loop (or, under Parallel > 1, kill the whole process), so the
// evaluation runs under sched.Guard and a panic surfaces as a trial
// error wrapping ErrPanic with the panic value and stack.
func runOne(ctx context.Context, env Environment, cfg space.Config, fidelity, abortAbove float64) (out trialOutcome) {
	err := sched.Guard(func() error {
		if ab, ok := env.(Abortable); ok && !math.IsInf(abortAbove, 1) {
			res, aborted, err := ab.RunAbortable(ctx, cfg, fidelity, abortAbove)
			out = trialOutcome{res: res, aborted: aborted, err: err}
			return nil
		}
		res, err := env.Run(ctx, cfg, fidelity)
		out = trialOutcome{res: res, err: err}
		return nil
	})
	if err != nil {
		out = trialOutcome{err: err}
	}
	return out
}

// saveCheckpoint persists an in-progress report, sanitizing the +Inf
// incumbent a run that has not yet succeeded carries (JSON cannot encode
// infinities; Resume recomputes the incumbent from the trial log anyway).
func saveCheckpoint(r Report, path string) error {
	if math.IsInf(r.BestValue, 0) || math.IsNaN(r.BestValue) {
		r.BestValue = 0
		r.BestConfig = nil
	}
	return r.Save(path)
}

// Save writes the report as JSON. The write is crash-safe against both
// process kills and power failure: data goes to a temp file in the
// target directory, is fsync'd, renamed into place, and the directory is
// fsync'd too — a reader (or a resumed run) never observes a torn file,
// and the rename itself survives a crash.
func (r Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("trial: marshal report: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".report-*.tmp")
	if err != nil {
		return fmt.Errorf("trial: temp file in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		//autolint:ignore droppederr already failing; the close error is secondary
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("trial: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		//autolint:ignore droppederr already failing; the close error is secondary
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("trial: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("trial: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("trial: rename to %s: %w", path, err)
	}
	// Without a directory fsync the rename may not be durable: a power
	// failure can roll the directory back to the old entry — or, for a
	// first write, to no entry at all.
	return syncDir(dir)
}

// LoadReport reads a report written by Save.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("trial: read %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("trial: parse %s: %w", path, err)
	}
	return r, nil
}

// BestOverTime returns the running-best value after each trial — the
// convergence curve every experiment plots.
func (r Report) BestOverTime() []float64 {
	out := make([]float64, len(r.Trials))
	best := math.Inf(1)
	for i, t := range r.Trials {
		if !t.Crashed && t.Value < best {
			best = t.Value
		}
		out[i] = best
	}
	return out
}
