package trial

import (
	"strconv"
)

// decodeTrialRecord is the replay hot path: a specialized parser for the
// exact JSON shape json.Marshal(TrialRecord) produces, avoiding
// encoding/json's reflection cost (several microseconds per record, which
// dominates store replay on small machines). It is strictly conservative:
// on anything outside the expected shape — unknown keys, escaped strings,
// nulls, nested structures — it reports !ok and the caller falls back to
// encoding/json, so behavior (including error text for malformed input)
// is unchanged. When it does report ok, the result is identical to what
// encoding/json would have produced.
func decodeTrialRecord(data []byte, rec *TrialRecord) (ok bool) {
	p := recParser{buf: data}
	p.ws()
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		p.ws()
		return p.pos == len(p.buf)
	}
	for {
		key, ok := p.str()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		switch key {
		case "id":
			f, ok := p.num()
			if !ok || f != float64(int(f)) {
				return false
			}
			rec.ID = int(f)
		case "config":
			if p.null() {
				rec.Config = nil // json.Marshal of a nil Config
				break
			}
			cfg, ok := p.config()
			if !ok {
				return false
			}
			rec.Config = cfg
		case "value":
			if rec.Value, ok = p.num(); !ok {
				return false
			}
		case "cost_seconds":
			if rec.CostSeconds, ok = p.num(); !ok {
				return false
			}
		case "fidelity":
			if rec.Fidelity, ok = p.num(); !ok {
				return false
			}
		case "crashed":
			if rec.Crashed, ok = p.boolean(); !ok {
				return false
			}
		case "aborted":
			if rec.Aborted, ok = p.boolean(); !ok {
				return false
			}
		case "timed_out":
			if rec.TimedOut, ok = p.boolean(); !ok {
				return false
			}
		case "hedged":
			if rec.Hedged, ok = p.boolean(); !ok {
				return false
			}
		case "cache_hit":
			if rec.CacheHit, ok = p.boolean(); !ok {
				return false
			}
		case "metrics":
			if p.null() {
				rec.Metrics = nil
				break
			}
			m, ok := p.metrics()
			if !ok {
				return false
			}
			rec.Metrics = m
		default:
			return false
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if !p.eat('}') {
			return false
		}
		p.ws()
		return p.pos == len(p.buf)
	}
}

// recParser is a minimal cursor over one JSON-encoded record.
type recParser struct {
	buf []byte
	pos int
}

func (p *recParser) ws() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *recParser) eat(c byte) bool {
	if p.pos < len(p.buf) && p.buf[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// str parses a string literal with no escapes; a backslash anywhere
// triggers the encoding/json fallback rather than escape handling here.
func (p *recParser) str() (string, bool) {
	if !p.eat('"') {
		return "", false
	}
	start := p.pos
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case '"':
			s := string(p.buf[start:p.pos])
			p.pos++
			return s, true
		case '\\':
			return "", false
		default:
			if p.buf[p.pos] < 0x20 {
				// Raw control characters are invalid JSON; let
				// encoding/json reject them so corruption still errors.
				return "", false
			}
			p.pos++
		}
	}
	return "", false
}

func (p *recParser) num() (float64, bool) {
	start := p.pos
	for p.pos < len(p.buf) {
		switch c := p.buf[p.pos]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p.pos++
		default:
			goto done
		}
	}
done:
	if p.pos == start {
		return 0, false
	}
	f, err := strconv.ParseFloat(string(p.buf[start:p.pos]), 64)
	return f, err == nil
}

func (p *recParser) null() bool {
	if len(p.buf)-p.pos >= 4 && string(p.buf[p.pos:p.pos+4]) == "null" {
		p.pos += 4
		return true
	}
	return false
}

func (p *recParser) boolean() (bool, bool) {
	if len(p.buf)-p.pos >= 4 && string(p.buf[p.pos:p.pos+4]) == "true" {
		p.pos += 4
		return true, true
	}
	if len(p.buf)-p.pos >= 5 && string(p.buf[p.pos:p.pos+5]) == "false" {
		p.pos += 5
		return false, true
	}
	return false, false
}

// metrics parses the {"name": number, ...} object; any non-numeric value
// triggers the encoding/json fallback.
func (p *recParser) metrics() (map[string]float64, bool) {
	if !p.eat('{') {
		return nil, false
	}
	m := map[string]float64{}
	p.ws()
	if p.eat('}') {
		return m, true
	}
	for {
		key, ok := p.str()
		if !ok {
			return nil, false
		}
		p.ws()
		if !p.eat(':') {
			return nil, false
		}
		p.ws()
		f, ok := p.num()
		if !ok {
			return nil, false
		}
		m[key] = f
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		return m, p.eat('}')
	}
}

// config parses the {"knob": value, ...} object; values may be numbers,
// escape-free strings, or booleans — the scalar types space.Config holds.
func (p *recParser) config() (map[string]any, bool) {
	if !p.eat('{') {
		return nil, false
	}
	cfg := map[string]any{}
	p.ws()
	if p.eat('}') {
		return cfg, true
	}
	for {
		key, ok := p.str()
		if !ok {
			return nil, false
		}
		p.ws()
		if !p.eat(':') {
			return nil, false
		}
		p.ws()
		if p.pos >= len(p.buf) {
			return nil, false
		}
		switch c := p.buf[p.pos]; {
		case c == '"':
			s, ok := p.str()
			if !ok {
				return nil, false
			}
			cfg[key] = s
		case c == 't', c == 'f':
			b, ok := p.boolean()
			if !ok {
				return nil, false
			}
			cfg[key] = b
		default:
			f, ok := p.num()
			if !ok {
				return nil, false
			}
			cfg[key] = f
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		return cfg, p.eat('}')
	}
}
