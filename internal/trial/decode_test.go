package trial

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"autotune/internal/space"
)

// TestDecodeTrialRecordMatchesEncodingJSON is the fast decoder's
// contract: for every payload it accepts, the result must be identical
// to encoding/json's; for every payload encoding/json accepts but the
// fast path declines, the fallback must still produce the right record.
func TestDecodeTrialRecordMatchesEncodingJSON(t *testing.T) {
	records := []TrialRecord{
		{},
		{ID: 0, Value: 0.25, CostSeconds: 1.5},
		{ID: 7, Config: space.Config{"cache_mb": 512.0, "workers": 8.0},
			Value: 0.123456789, CostSeconds: 2.25, Fidelity: 0.5},
		{ID: 12, Config: space.Config{"engine": "lsm", "compress": true, "x": -3.5e-7},
			Value: -1, CostSeconds: 0, Crashed: true, Aborted: true,
			TimedOut: true, Hedged: true, CacheHit: true},
		{ID: 3, Config: space.Config{}, Value: math.MaxFloat64, Fidelity: 1},
		{ID: 99, Config: space.Config{"note": "utf8 ✓ köttbullar"}, Value: 1e-300},
	}
	for _, want := range records {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		var fast TrialRecord
		if !decodeTrialRecord(data, &fast) {
			t.Fatalf("fast decoder declined marshaled record %s", data)
		}
		var slow TrialRecord
		if err := json.Unmarshal(data, &slow); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("fast != slow for %s:\nfast %+v\nslow %+v", data, fast, slow)
		}
	}
}

// TestDecodeTrialRecordDeclinesOddShapes: inputs outside the marshaled
// shape must be declined (fallback handles them), never mis-parsed.
func TestDecodeTrialRecordDeclinesOddShapes(t *testing.T) {
	declined := []string{
		``,
		`{`,
		`[]`,
		`{"id":1,"unknown":2}`,
		`{"id":null}`,
		`{"id":1.5}`,
		`{"config":{"a":[1]}}`,
		`{"config":{"a":{"b":1}}}`,
		`{"config":{"a":null}}`,
		`{"value":"oops"}`,
		`{"crashed":1}`,
		`{"id":1} trailing`,
		`{"config":{"s":"esc\"aped"}}`,
		"{\"config\":{\"s\":\"ctrl\x01char\"}}",
		`{"id":1,}`,
		`{"id":--3}`,
	}
	for _, in := range declined {
		var rec TrialRecord
		if decodeTrialRecord([]byte(in), &rec) {
			t.Fatalf("fast decoder accepted %q as %+v", in, rec)
		}
	}

	// The escaped-string case must still round-trip through the fallback:
	// decodeStoreRecords on such a payload yields encoding/json's answer.
	want := TrialRecord{ID: 4, Config: space.Config{"s": `a"b`}, Value: 1}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var rec TrialRecord
	if decodeTrialRecord(data, &rec) {
		t.Fatalf("escaped string should decline fast path: %s", data)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("fallback mismatch: %+v != %+v", rec, want)
	}
}

// TestDecodeTrialRecordWhitespace: the decoder tolerates the whitespace
// encoding/json tolerates at the positions Marshal can never emit it,
// since journal files may be touched by hand.
func TestDecodeTrialRecordWhitespace(t *testing.T) {
	in := " { \"id\" : 5 , \"config\" : { \"a\" : 1 } , \"value\" : 2 } "
	var fast, slow TrialRecord
	if !decodeTrialRecord([]byte(in), &fast) {
		t.Fatalf("declined %q", in)
	}
	if err := json.Unmarshal([]byte(in), &slow); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("fast %+v != slow %+v", fast, slow)
	}
}
