package trial

import (
	"context"
	"sync"

	"autotune/internal/space"
)

// evalKey identifies one evaluation: a configuration (by its canonical key)
// at a fidelity. The same config at a different fidelity is a different
// measurement.
type evalKey struct {
	cfg      string
	fidelity float64
}

// evalEntry is one cache slot. done is closed exactly once, when the
// leading evaluation finishes; ok/res/aborted are written before the close
// and read only after it.
type evalEntry struct {
	done    chan struct{}
	ok      bool
	res     Result
	aborted bool
}

// evalCache deduplicates evaluations of identical (config, fidelity) pairs
// across an entire run, with single-flight semantics: the first trial to
// request a key becomes the leader and actually runs the environment;
// concurrent requesters block until the leader finishes and then reuse its
// result. Only successful, non-aborted outcomes are cached — a failed
// leader removes its slot so a later duplicate re-runs instead of
// inheriting the failure. Optimizers re-suggesting an already-measured
// configuration (common late in a run over discrete spaces) therefore cost
// zero environment time.
type evalCache struct {
	mu sync.Mutex
	m  map[evalKey]*evalEntry
}

func newEvalCache() *evalCache {
	return &evalCache{m: make(map[evalKey]*evalEntry)}
}

// claim returns the entry for key and whether the caller is the leader
// (created the slot and must run the evaluation and then fulfill it).
func (c *evalCache) claim(key evalKey) (*evalEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		return e, false
	}
	e := &evalEntry{done: make(chan struct{})}
	c.m[key] = e
	return e, true
}

// fulfill publishes the leader's outcome. Successes stay cached; failures
// and aborts vacate the slot so the next requester becomes a fresh leader.
func (c *evalCache) fulfill(key evalKey, e *evalEntry, out trialOutcome) {
	c.mu.Lock()
	if out.err == nil && !out.aborted {
		e.ok = true
		e.res = out.res
	} else {
		delete(c.m, key)
	}
	c.mu.Unlock()
	close(e.done)
}

// prime installs an already-completed result, used by Resume to re-warm the
// cache from replayed journal records.
func (c *evalCache) prime(key evalKey, res Result) {
	c.mu.Lock()
	if _, exists := c.m[key]; !exists {
		e := &evalEntry{done: make(chan struct{}), ok: true, res: res}
		close(e.done)
		c.m[key] = e
	}
	c.mu.Unlock()
}

// runOneCached is runOne behind the deduplicating cache. A cache hit
// returns the original measurement's value and metrics at zero cost and is
// marked cacheHit so accounting (journal record, Report.CacheHits) can
// distinguish it; the environment is not touched. With a nil cache it is
// exactly runOne.
func runOneCached(ctx context.Context, env Environment, cache *evalCache, cfg space.Config, fidelity, abortAbove float64) trialOutcome {
	if cache == nil {
		return runOne(ctx, env, cfg, fidelity, abortAbove)
	}
	key := evalKey{cfg: cfg.Key(), fidelity: fidelity}
	for {
		e, leader := cache.claim(key)
		if leader {
			out := runOne(ctx, env, cfg, fidelity, abortAbove)
			cache.fulfill(key, e, out)
			return out
		}
		select {
		case <-e.done:
		case <-ctx.Done():
			return trialOutcome{err: ctx.Err()}
		}
		if e.ok {
			res := e.res
			res.CostSeconds = 0 // nothing ran; the original already paid
			return trialOutcome{res: res, cacheHit: true}
		}
		// The leader failed and vacated the slot; loop to claim it.
	}
}
