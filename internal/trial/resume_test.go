package trial

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// countingEnv is a quadratic objective that counts Run invocations and can
// fail transiently, hang (deadline-style), or call a hook per trial.
type countingEnv struct {
	sp        *space.Space
	runs      atomic.Int64
	failures  atomic.Int64
	failEvery int64 // every n-th run crashes (0 = never)
	onRun     func(n int64) error
}

func newCountingEnv() *countingEnv {
	return &countingEnv{sp: space.MustNew(space.Float("x", 0, 1))}
}

func (e *countingEnv) Space() *space.Space { return e.sp }

func (e *countingEnv) Run(ctx context.Context, cfg space.Config, fid float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	n := e.runs.Add(1)
	if e.onRun != nil {
		if err := e.onRun(n); err != nil {
			return Result{CostSeconds: 0.1}, err
		}
	}
	if e.failEvery > 0 && n%e.failEvery == 0 {
		e.failures.Add(1)
		return Result{CostSeconds: 0.1}, ErrCrash
	}
	x := cfg.Float("x")
	return Result{Value: (x - 0.6) * (x - 0.6), CostSeconds: 1}, nil
}

func TestResumeFromCompleteCheckpointRunsNothing(t *testing.T) {
	env := newCountingEnv()
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	opts := Options{Budget: 25, Checkpoint: ckpt}
	o1 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(1)))
	rep, err := Run(o1, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	ran := env.runs.Load()
	if ran != 25 {
		t.Fatalf("env ran %d times, want 25", ran)
	}
	// Resume with a fresh optimizer: the checkpoint covers the full
	// budget, so the environment must not be touched.
	o2 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(99)))
	rep2, err := Resume(o2, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if env.runs.Load() != ran {
		t.Fatalf("resume re-ran trials: %d -> %d", ran, env.runs.Load())
	}
	if rep2.Resumed != 25 || len(rep2.Trials) != 25 {
		t.Fatalf("resumed=%d trials=%d", rep2.Resumed, len(rep2.Trials))
	}
	if rep2.BestValue != rep.BestValue {
		t.Fatalf("best mismatch: %v vs %v", rep2.BestValue, rep.BestValue)
	}
	// The replayed history landed in the fresh optimizer.
	if o2.N() != 25 {
		t.Fatalf("optimizer observed %d, want 25", o2.N())
	}
	if _, bv, ok := o2.Best(); !ok || bv != rep.BestValue {
		t.Fatalf("optimizer best %v, want %v", bv, rep.BestValue)
	}
}

func TestResumeAfterKillContinuesWithoutRerun(t *testing.T) {
	env := newCountingEnv()
	env.failEvery = 5
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	opts := Options{Budget: 30, Checkpoint: ckpt, CheckpointEvery: 1}

	// "Kill" the process after 12 trials by cancelling the context.
	ctx, cancel := context.WithCancel(context.Background())
	env.onRun = func(n int64) error {
		if n >= 12 {
			cancel()
		}
		return nil
	}
	o1 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(2)))
	_, err := RunContext(ctx, o1, env, opts)
	if err == nil {
		t.Fatal("cancelled run should report the context error")
	}
	partial, err := LoadReport(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	done := len(partial.Trials)
	if done == 0 || done >= 30 {
		t.Fatalf("checkpoint has %d trials, want partial progress", done)
	}

	// Resume with a fresh optimizer and finish the budget.
	env.onRun = nil
	before := env.runs.Load()
	o2 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(3)))
	rep, err := Resume(o2, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 30 {
		t.Fatalf("trials = %d, want 30", len(rep.Trials))
	}
	if rep.Resumed != done {
		t.Fatalf("resumed = %d, want %d", rep.Resumed, done)
	}
	if got := env.runs.Load() - before; got != int64(30-done) {
		t.Fatalf("resume ran %d trials, want %d", got, 30-done)
	}
	// IDs are sequential with no duplicates across the kill boundary.
	for i, tr := range rep.Trials {
		if tr.ID != i {
			t.Fatalf("trial %d has id %d", i, tr.ID)
		}
	}
	// The final checkpoint matches the completed report.
	final, err := LoadReport(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Trials) != 30 || final.BestValue != rep.BestValue {
		t.Fatalf("final checkpoint diverges: %d trials best %v", len(final.Trials), final.BestValue)
	}
}

func TestSaveIsAtomicAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	rep := Report{BestValue: 1, Trials: []TrialRecord{{ID: 0, Value: 1}}}
	for i := 0; i < 3; i++ {
		if err := rep.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stale temp file %s", e.Name())
		}
	}
	if _, err := LoadReport(path); err != nil {
		t.Fatal(err)
	}
	if err := rep.Save(filepath.Join(dir, "missing", "report.json")); err == nil {
		t.Fatal("saving into a missing directory should error")
	}
}

// TestRunParallelFlakyNoLostTrials exercises the batch path under the race
// detector with a crashing environment: no trial may be lost, accounting
// must balance, and best-so-far must be monotone.
func TestRunParallelFlakyNoLostTrials(t *testing.T) {
	env := newCountingEnv()
	env.failEvery = 3 // a third of trials crash
	o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(4)))
	rep, err := Run(o, env, Options{Budget: 64, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 64 {
		t.Fatalf("lost trials: %d/64", len(rep.Trials))
	}
	if int64(rep.Crashes) != env.failures.Load() {
		t.Fatalf("crashes %d != env failures %d", rep.Crashes, env.failures.Load())
	}
	var total float64
	seen := map[int]bool{}
	for _, tr := range rep.Trials {
		if seen[tr.ID] {
			t.Fatalf("duplicate trial id %d", tr.ID)
		}
		seen[tr.ID] = true
		total += tr.CostSeconds
	}
	if math.Abs(total-rep.TotalCostSeconds) > 1e-9 {
		t.Fatalf("cost accounting off: %v vs %v", total, rep.TotalCostSeconds)
	}
	curve := rep.BestOverTime()
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatal("best-over-time must be non-increasing")
		}
	}
	if curve[len(curve)-1] != rep.BestValue {
		t.Fatal("final curve point should equal best")
	}
	if o.N() != 64 {
		t.Fatalf("optimizer observed %d, want 64", o.N())
	}
}

// timeoutEnv times out (deadline-style) whenever fidelity exceeds a
// threshold — a benchmark too slow for its deadline until degraded.
type timeoutEnv struct {
	sp        *space.Space
	threshold float64
}

func (e *timeoutEnv) Space() *space.Space { return e.sp }

func (e *timeoutEnv) Run(ctx context.Context, cfg space.Config, fid float64) (Result, error) {
	if fid > e.threshold {
		return Result{CostSeconds: 5}, fmt.Errorf("deadline: %w", context.DeadlineExceeded)
	}
	return Result{Value: cfg.Float("x"), CostSeconds: fid}, nil
}

func TestFidelityDegradesAfterTimeouts(t *testing.T) {
	env := &timeoutEnv{sp: space.MustNew(space.Float("x", 0, 1)), threshold: 0.3}
	o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(5)))
	rep, err := Run(o, env, Options{Budget: 10, Fidelity: 1, DegradeAfterTimeouts: 1})
	if err != nil {
		t.Fatal(err)
	}
	// fid 1 times out -> 0.5 times out -> 0.25 succeeds.
	if rep.Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2", rep.Timeouts)
	}
	if rep.Degradations != 2 {
		t.Fatalf("degradations = %d, want 2", rep.Degradations)
	}
	last := rep.Trials[len(rep.Trials)-1]
	if last.Fidelity != 0.25 {
		t.Fatalf("final fidelity = %v, want 0.25", last.Fidelity)
	}
	for _, tr := range rep.Trials {
		if tr.TimedOut && !tr.Crashed {
			t.Fatal("timed-out trials count as crashed")
		}
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	env := newCountingEnv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(6)))
	_, err := RunContext(ctx, o, env, Options{Budget: 5})
	if err == nil {
		t.Fatal("pre-cancelled context should error")
	}
	if env.runs.Load() != 0 {
		t.Fatal("no trials should run under a cancelled context")
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	env := newCountingEnv()
	o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(7)))
	if _, err := Resume(o, env, Options{Budget: 5}); err == nil {
		t.Fatal("resume without a checkpoint path should error")
	}
	if _, err := Resume(o, env, Options{Budget: 5, Checkpoint: filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Fatal("resume from a missing checkpoint should error")
	}
}
