package trial

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// TestReadJournalInteriorCorruptionErrors pins the WAL prefix contract:
// a damaged record *followed by more records* is disk corruption and must
// surface as an error, while the same damage on the final line is a torn
// tail and is skipped.
func TestReadJournalInteriorCorruptionErrors(t *testing.T) {
	good := func(id int) string {
		return fmt.Sprintf(`{"id":%d,"config":{"x":0.5},"value":%d}`, id, id) + "\n"
	}
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	if err := os.WriteFile(path, []byte(good(0)+`{"id":1,"value":0.`+"\n"+good(2)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("interior corruption read = %v, want ErrJournalCorrupt", err)
	}

	// The same damaged line at the tail is the crash-mid-append artifact:
	// skipped, no error.
	if err := os.WriteFile(path, []byte(good(0)+good(2)+`{"id":1,"value":0.`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail read = %v, want nil", err)
	}
	if len(recs) != 2 || recs[0].ID != 0 || recs[1].ID != 2 {
		t.Fatalf("torn tail records = %v, want IDs [0 2]", recs)
	}
}

// TestJournalPoisonedAfterFailure: once an Append fails, the journal must
// fail every subsequent Append fast — writing past a hole would break the
// prefix guarantee.
func TestJournalPoisonedAfterFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(TrialRecord{ID: 0}); err != nil {
		t.Fatal(err)
	}
	// Force the next write to fail by closing the descriptor underneath.
	if err := j.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(TrialRecord{ID: 1}); err == nil {
		t.Fatal("append on a closed file should fail")
	} else if errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("first failure reported as poisoned: %v", err)
	}
	if err := j.Append(TrialRecord{ID: 2}); !errors.Is(err, ErrJournalPoisoned) {
		t.Fatalf("append after failure = %v, want ErrJournalPoisoned", err)
	}
	j.f = nil // already closed

	// The durable prefix is intact: reopening reads the acknowledged record.
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != 0 {
		t.Fatalf("journal holds %v, want the one acknowledged record", recs)
	}
}

func TestRunWithStoreThenResume(t *testing.T) {
	env := newCountingEnv()
	dir := filepath.Join(t.TempDir(), "studies")
	opts := Options{Budget: 8, Store: dir, Study: "exp"}
	o1 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(1)))
	rep, err := Run(o1, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 8 || env.runs.Load() != 8 {
		t.Fatalf("first run: %d trials, %d env runs", len(rep.Trials), env.runs.Load())
	}

	// Resume with a doubled budget: the 8 stored trials replay without
	// touching the environment, then 8 more run.
	opts.Budget = 16
	o2 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(9)))
	rep2, err := Resume(o2, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != 8 {
		t.Fatalf("resumed = %d, want 8", rep2.Resumed)
	}
	if len(rep2.Trials) != 16 || env.runs.Load() != 16 {
		t.Fatalf("after resume: %d trials, %d env runs, want 16 and 16", len(rep2.Trials), env.runs.Load())
	}
	if o2.N() != 16 {
		t.Fatalf("optimizer observed %d, want 16", o2.N())
	}
}

func TestRunStoreKillMidRunResumesExactly(t *testing.T) {
	env := newCountingEnv()
	dir := filepath.Join(t.TempDir(), "studies")
	opts := Options{Budget: 30, Store: dir, Study: "kill", Parallel: 3}
	ctx, cancel := context.WithCancel(context.Background())
	env.onRun = func(n int64) error {
		if n >= 12 {
			cancel()
		}
		return nil
	}
	o1 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(2)))
	if _, err := RunContext(ctx, o1, env, opts); err == nil {
		t.Fatal("cancelled run should report the context error")
	}
	recorded, err := ReadStudyJournal(dir, "kill")
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 || len(recorded) >= 30 {
		t.Fatalf("store recorded %d trials mid-kill, want a strict partial", len(recorded))
	}
	ranBefore := env.runs.Load()

	env.onRun = nil
	o2 := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(3)))
	rep, err := Resume(o2, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != len(recorded) {
		t.Fatalf("resumed %d, want the %d stored trials", rep.Resumed, len(recorded))
	}
	if len(rep.Trials) != 30 {
		t.Fatalf("final trials = %d, want 30", len(rep.Trials))
	}
	if got, want := env.runs.Load()-ranBefore, int64(30-len(recorded)); got != want {
		t.Fatalf("resume ran the environment %d times, want exactly %d (no re-runs)", got, want)
	}
}

// TestReadJournalOnStoreDirectory: the v0 reader transparently reads a
// segmented store directory, merging every study.
func TestReadJournalOnStoreDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "studies")
	sj, err := OpenStudyJournal(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if err := sj.Append(TrialRecord{ID: id, Config: space.Config{"x": 0.1}, Value: float64(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sj.Close(); err != nil {
		t.Fatal(err)
	}
	sj2, err := OpenStudyJournal(dir, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := sj2.Append(TrialRecord{ID: 7, Value: 7}); err != nil {
		t.Fatal(err)
	}
	if err := sj2.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].ID != 0 || recs[3].ID != 7 {
		t.Fatalf("merged store read = %v, want IDs [0 1 2 7]", recs)
	}
	if recs[1].Value != 1 {
		t.Fatalf("record 1 value = %v, want payload round-trip", recs[1].Value)
	}
}

func TestMigrateJournal(t *testing.T) {
	tmp := t.TempDir()
	v0 := filepath.Join(tmp, "wal.jsonl")
	j, err := OpenJournal(v0)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 5; id++ {
		if err := j.Append(TrialRecord{ID: id, Config: space.Config{"x": 0.2}, Value: float64(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(tmp, "studies")
	n, err := MigrateJournal(v0, dir, "legacy")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("migrated %d records, want 5", n)
	}
	if _, err := os.Stat(v0); !os.IsNotExist(err) {
		t.Fatalf("v0 journal still present after migration: %v", err)
	}
	recs, err := ReadStudyJournal(dir, "legacy")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[4].Value != 4 {
		t.Fatalf("store holds %v, want the 5 migrated records", recs)
	}

	// Re-running on the now-missing file is a no-op, not an error.
	n, err = MigrateJournal(v0, dir, "legacy")
	if err != nil || n != 0 {
		t.Fatalf("second migration = (%d, %v), want (0, nil)", n, err)
	}
}

// collectSink records appends in memory — a custom JournalSink.
type collectSink struct{ recs []TrialRecord }

func (c *collectSink) Append(rec TrialRecord) error {
	c.recs = append(c.recs, rec)
	return nil
}
func (c *collectSink) Close() error { return nil }

// TestOptionsSinkOverridesJournal: an explicit Sink wins over both the
// Journal path and the Store directory.
func TestOptionsSinkOverridesJournal(t *testing.T) {
	env := newCountingEnv()
	sink := &collectSink{}
	jpath := filepath.Join(t.TempDir(), "unused.jsonl")
	opts := Options{Budget: 6, Sink: sink, Journal: jpath}
	o := optimizer.NewRandom(env.sp, rand.New(rand.NewSource(4)))
	if _, err := Run(o, env, opts); err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) != 6 {
		t.Fatalf("sink received %d records, want 6", len(sink.recs))
	}
	if _, err := os.Stat(jpath); !os.IsNotExist(err) {
		t.Fatalf("journal file created despite Sink override: %v", err)
	}
}

// TestSaveCrashWindowsReaderNeverTorn walks every crash window of the
// atomic-rename Save protocol and asserts a reader sees either a complete
// old report, a complete new report, or a clean not-exist error — never a
// torn file.
func TestSaveCrashWindowsReaderNeverTorn(t *testing.T) {
	old := Report{BestValue: 1, Trials: []TrialRecord{{ID: 0, Value: 1}}}
	next := Report{BestValue: 0.5, Trials: []TrialRecord{{ID: 0, Value: 1}, {ID: 1, Value: 0.5}}}
	nextJSON, err := json.MarshalIndent(next, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		setup      func(t *testing.T, dir, path string)
		wantTrials int // -1 means LoadReport must fail with not-exist
	}{
		{
			name:       "kill before temp write",
			setup:      func(t *testing.T, dir, path string) { mustSave(t, old, path) },
			wantTrials: 1,
		},
		{
			name: "kill mid temp write: torn temp beside old report",
			setup: func(t *testing.T, dir, path string) {
				mustSave(t, old, path)
				writeRaw(t, filepath.Join(dir, ".report-123.tmp"), nextJSON[:len(nextJSON)/2])
			},
			wantTrials: 1,
		},
		{
			name: "kill after temp fsync, before rename",
			setup: func(t *testing.T, dir, path string) {
				mustSave(t, old, path)
				writeRaw(t, filepath.Join(dir, ".report-456.tmp"), nextJSON)
			},
			wantTrials: 1,
		},
		{
			name: "kill after rename, before dir fsync",
			setup: func(t *testing.T, dir, path string) {
				mustSave(t, old, path)
				mustSave(t, next, path)
			},
			wantTrials: 2,
		},
		{
			name: "first save killed mid write: torn temp, no report",
			setup: func(t *testing.T, dir, path string) {
				writeRaw(t, filepath.Join(dir, ".report-789.tmp"), nextJSON[:3])
			},
			wantTrials: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "report.json")
			tc.setup(t, dir, path)
			rep, err := LoadReport(path)
			if tc.wantTrials < 0 {
				if !errors.Is(err, os.ErrNotExist) {
					t.Fatalf("LoadReport = %v, want a clean not-exist error (never a torn parse)", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("LoadReport failed in a recoverable crash state: %v", err)
			}
			if len(rep.Trials) != tc.wantTrials {
				t.Fatalf("loaded %d trials, want %d (a complete old or new report)", len(rep.Trials), tc.wantTrials)
			}
		})
	}
}

func mustSave(t *testing.T, r Report, path string) {
	t.Helper()
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
}

func writeRaw(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
