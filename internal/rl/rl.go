// Package rl implements the online-tuning reinforcement learners from the
// tutorial (slides 79-80): tabular Q-learning over discretized states and a
// neural actor-critic (softmax policy + TD(0) value baseline, the
// CDBTune/QTune family's core update rule). Agents choose among discrete
// actions — typically knob increments/decrements produced by
// internal/core's online agent — and maximize reward (use the negated
// objective when minimizing).
package rl

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"autotune/internal/nn"
)

// QLearning is tabular Q-learning with ε-greedy exploration and optional
// ε decay. States are discretized to string keys by Buckets.
type QLearning struct {
	// Alpha is the learning rate (default 0.1).
	Alpha float64
	// Gamma is the discount factor (default 0.9).
	Gamma float64
	// Epsilon is the exploration rate (default 0.2).
	Epsilon float64
	// EpsilonDecay multiplies Epsilon after each update (default 1 = none).
	EpsilonDecay float64
	// MinEpsilon floors the decayed exploration rate (default 0.01).
	MinEpsilon float64
	// Buckets controls state discretization: each state feature in [0,1]
	// is quantized into this many buckets (default 8).
	Buckets int

	actions int
	q       map[string][]float64
}

// NewQLearning returns a Q-learning agent with the given action count.
func NewQLearning(actions int) (*QLearning, error) {
	if actions <= 0 {
		return nil, fmt.Errorf("rl: actions must be positive, got %d", actions)
	}
	return &QLearning{
		Alpha:        0.1,
		Gamma:        0.9,
		Epsilon:      0.2,
		EpsilonDecay: 1,
		MinEpsilon:   0.01,
		Buckets:      8,
		actions:      actions,
		q:            make(map[string][]float64),
	}, nil
}

// Actions returns the action count.
func (a *QLearning) Actions() int { return a.actions }

// Name identifies the algorithm.
func (a *QLearning) Name() string { return "qlearning" }

// States returns the number of distinct discretized states seen.
func (a *QLearning) States() int { return len(a.q) }

func (a *QLearning) key(state []float64) string {
	var b strings.Builder
	for i, v := range state {
		if i > 0 {
			b.WriteByte(',')
		}
		bucket := int(v * float64(a.Buckets))
		if bucket >= a.Buckets {
			bucket = a.Buckets - 1
		}
		if bucket < 0 {
			bucket = 0
		}
		b.WriteString(strconv.Itoa(bucket))
	}
	return b.String()
}

func (a *QLearning) row(state []float64) []float64 {
	k := a.key(state)
	row, ok := a.q[k]
	if !ok {
		row = make([]float64, a.actions)
		a.q[k] = row
	}
	return row
}

// Act selects an action for the state (ε-greedy over Q values).
func (a *QLearning) Act(state []float64, rng *rand.Rand) int {
	if rng.Float64() < a.Epsilon {
		return rng.Intn(a.actions)
	}
	row := a.row(state)
	best, bestV := 0, math.Inf(-1)
	for i, v := range row {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Greedy returns the argmax action without exploration.
func (a *QLearning) Greedy(state []float64) int {
	row := a.row(state)
	best, bestV := 0, math.Inf(-1)
	for i, v := range row {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Update applies the Q-learning TD update for the transition
// (state, action, reward, next) and decays ε.
func (a *QLearning) Update(state []float64, action int, reward float64, next []float64) {
	row := a.row(state)
	nextRow := a.row(next)
	maxNext := math.Inf(-1)
	for _, v := range nextRow {
		if v > maxNext {
			maxNext = v
		}
	}
	row[action] += a.Alpha * (reward + a.Gamma*maxNext - row[action])
	a.Epsilon *= a.EpsilonDecay
	if a.Epsilon < a.MinEpsilon {
		a.Epsilon = a.MinEpsilon
	}
}

// Q returns the current Q value for (state, action), for inspection.
func (a *QLearning) Q(state []float64, action int) float64 {
	return a.row(state)[action]
}

// ActorCritic is a one-step actor-critic: a softmax policy network and a
// value (critic) network, both small MLPs, updated with the TD(0)
// advantage. It handles continuous state features without discretization.
type ActorCritic struct {
	// ActorLR and CriticLR are the two learning rates (defaults 0.01, 0.05).
	ActorLR, CriticLR float64
	// Gamma is the discount factor (default 0.9).
	Gamma float64
	// Entropy adds an entropy bonus coefficient encouraging exploration
	// (default 0.01).
	Entropy float64

	actions int
	actor   *nn.Net
	critic  *nn.Net
}

// NewActorCritic builds an agent for stateDim features and the given
// action count, with hidden-layer width `hidden` (default 32 when <= 0).
func NewActorCritic(stateDim, actions, hidden int, rng *rand.Rand) (*ActorCritic, error) {
	if actions <= 0 || stateDim <= 0 {
		return nil, fmt.Errorf("rl: bad dims state=%d actions=%d", stateDim, actions)
	}
	if hidden <= 0 {
		hidden = 32
	}
	return &ActorCritic{
		ActorLR:  0.01,
		CriticLR: 0.05,
		Gamma:    0.9,
		Entropy:  0.01,
		actions:  actions,
		actor:    nn.New([]int{stateDim, hidden, actions}, rng),
		critic:   nn.New([]int{stateDim, hidden, 1}, rng),
	}, nil
}

// Actions returns the action count.
func (a *ActorCritic) Actions() int { return a.actions }

// Name identifies the algorithm.
func (a *ActorCritic) Name() string { return "actor-critic" }

// Policy returns the current action distribution at state.
func (a *ActorCritic) Policy(state []float64) []float64 {
	return nn.Softmax(a.actor.Forward(state))
}

// Act samples an action from the softmax policy.
func (a *ActorCritic) Act(state []float64, rng *rand.Rand) int {
	return nn.SampleCategorical(a.Policy(state), rng)
}

// Greedy returns the mode of the policy.
func (a *ActorCritic) Greedy(state []float64) int {
	p := a.Policy(state)
	best, bestV := 0, math.Inf(-1)
	for i, v := range p {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Value returns the critic's estimate at state.
func (a *ActorCritic) Value(state []float64) float64 {
	return a.critic.Forward(state)[0]
}

// Update applies one actor-critic step for the transition
// (state, action, reward, next, done).
func (a *ActorCritic) Update(state []float64, action int, reward float64, next []float64, done bool) {
	v := a.critic.Forward(state)[0]
	target := reward
	if !done {
		target += a.Gamma * a.critic.Forward(next)[0]
	}
	advantage := target - v

	// Critic: minimize (v - target)^2.
	a.critic.TrainMSE(state, []float64{target}, a.CriticLR)

	// Actor: policy-gradient step. dL/dlogits for -advantage*log pi(a|s)
	// with softmax is (pi - onehot(a)) * advantage; entropy bonus adds
	// -Entropy * dH/dlogits.
	p := nn.Softmax(a.actor.Forward(state))
	grad := make([]float64, a.actions)
	for i := range grad {
		g := p[i]
		if i == action {
			g -= 1
		}
		grad[i] = g * advantage
		// Entropy gradient: dH/dlogit_i = -p_i*(log p_i + H); we use the
		// simpler surrogate of pushing logits toward uniform.
		grad[i] += a.Entropy * (p[i] - 1/float64(a.actions))
	}
	// The actor network was last Forwarded on `state` inside Softmax above,
	// so backprop uses the right activations.
	a.actor.Backward(grad, a.ActorLR, 5)
}
