package rl

import (
	"math/rand"
	"testing"
)

// chainEnv is a tiny 1-D walk: state in {0..4} encoded as [s/4]; action 0
// moves left, action 1 moves right; reward 1 at state 4, else 0. Optimal
// policy: always right.
type chainEnv struct{ s int }

func (e *chainEnv) state() []float64 { return []float64{float64(e.s) / 4} }

func (e *chainEnv) step(a int) (reward float64, done bool) {
	if a == 1 {
		e.s++
	} else if e.s > 0 {
		e.s--
	}
	if e.s >= 4 {
		e.s = 4
		return 1, true
	}
	return 0, false
}

func TestQLearningSolvesChain(t *testing.T) {
	agent, err := NewQLearning(2)
	if err != nil {
		t.Fatal(err)
	}
	agent.Epsilon = 0.5 // off-policy: heavy exploration is safe
	rng := rand.New(rand.NewSource(1))
	for ep := 0; ep < 800; ep++ {
		env := &chainEnv{}
		for step := 0; step < 20; step++ {
			s := env.state()
			a := agent.Act(s, rng)
			r, done := env.step(a)
			agent.Update(s, a, r, env.state())
			if done {
				break
			}
		}
	}
	// Greedy policy should go right from every state.
	for s := 0; s < 4; s++ {
		state := []float64{float64(s) / 4}
		if agent.Greedy(state) != 1 {
			t.Fatalf("greedy action at state %d is not right; Q=[%v %v]",
				s, agent.Q(state, 0), agent.Q(state, 1))
		}
	}
	if agent.States() == 0 {
		t.Fatal("no states learned")
	}
	if agent.Name() != "qlearning" || agent.Actions() != 2 {
		t.Fatal("metadata")
	}
}

func TestQLearningEpsilonDecays(t *testing.T) {
	agent, _ := NewQLearning(2)
	agent.Epsilon = 1.0
	agent.EpsilonDecay = 0.9
	agent.MinEpsilon = 0.05
	s := []float64{0}
	for i := 0; i < 100; i++ {
		agent.Update(s, 0, 0, s)
	}
	if agent.Epsilon != 0.05 {
		t.Fatalf("epsilon = %v, want floor 0.05", agent.Epsilon)
	}
}

func TestQLearningRejectsZeroActions(t *testing.T) {
	if _, err := NewQLearning(0); err == nil {
		t.Fatal("expected error")
	}
}

func TestQLearningBucketing(t *testing.T) {
	agent, _ := NewQLearning(2)
	agent.Buckets = 4
	// States in the same bucket share Q values.
	agent.Update([]float64{0.0}, 0, 10, []float64{0.0})
	if agent.Q([]float64{0.1}, 0) == 0 {
		t.Fatal("0.0 and 0.1 should share a bucket at 4 buckets")
	}
	if agent.Q([]float64{0.9}, 0) != 0 {
		t.Fatal("0.9 should be a different bucket")
	}
	// Out-of-range states clamp rather than panic.
	agent.Update([]float64{1.5}, 1, 1, []float64{-0.5})
}

func TestActorCriticSolvesChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	agent, err := NewActorCritic(1, 2, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 400; ep++ {
		env := &chainEnv{}
		for step := 0; step < 20; step++ {
			s := env.state()
			a := agent.Act(s, rng)
			r, done := env.step(a)
			agent.Update(s, a, r, env.state(), done)
			if done {
				break
			}
		}
	}
	rightVotes := 0
	for s := 0; s < 4; s++ {
		if agent.Greedy([]float64{float64(s) / 4}) == 1 {
			rightVotes++
		}
	}
	if rightVotes < 3 {
		t.Fatalf("greedy goes right in only %d/4 states", rightVotes)
	}
	if agent.Name() != "actor-critic" || agent.Actions() != 2 {
		t.Fatal("metadata")
	}
}

func TestActorCriticValueLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agent, _ := NewActorCritic(1, 2, 16, rng)
	// Terminal state 1 always yields reward 1: critic should learn ~1 for
	// the state preceding it under the trained policy.
	for i := 0; i < 2000; i++ {
		agent.Update([]float64{0.75}, 1, 1, []float64{1}, true)
	}
	v := agent.Value([]float64{0.75})
	if v < 0.5 {
		t.Fatalf("critic value = %v, want close to 1", v)
	}
}

func TestActorCriticPolicyIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	agent, _ := NewActorCritic(3, 4, 8, rng)
	p := agent.Policy([]float64{0.2, 0.4, 0.6})
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatal("negative probability")
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestActorCriticRejectsBadDims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := NewActorCritic(0, 2, 8, rng); err == nil {
		t.Fatal("expected error for stateDim=0")
	}
	if _, err := NewActorCritic(2, 0, 8, rng); err == nil {
		t.Fatal("expected error for actions=0")
	}
}
