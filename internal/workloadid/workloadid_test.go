package workloadid

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/workload"
)

func TestSynthesizeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := Synthesize(workload.YCSBA(), 64, rng)
	if len(series) != NumChannels {
		t.Fatalf("channels = %d", len(series))
	}
	for c, ch := range series {
		if len(ch) != 64 {
			t.Fatalf("channel %d len = %d", c, len(ch))
		}
		for _, v := range ch {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("channel %d has invalid value %v", c, v)
			}
		}
	}
	// Write-heavy workload writes more than read-only.
	wr := Synthesize(workload.YCSBA(), 64, nil)
	ro := Synthesize(workload.YCSBC(), 64, nil)
	if !(mean(wr[ChanWriteMB]) > mean(ro[ChanWriteMB])) {
		t.Fatal("write channel should reflect write fraction")
	}
}

func mean(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func TestEmbedTelemetryStable(t *testing.T) {
	series := Synthesize(workload.TPCC(), 64, nil)
	a := EmbedTelemetry(series)
	b := EmbedTelemetry(series)
	if len(a) != NumChannels*7 {
		t.Fatalf("embedding dim = %d", len(a))
	}
	if Euclidean(a, b) != 0 {
		t.Fatal("embedding should be deterministic")
	}
}

func TestEmbeddingSeparatesWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	embed := func(d workload.Descriptor, seed int64) []float64 {
		return EmbedTelemetry(Synthesize(d, 96, rand.New(rand.NewSource(seed))))
	}
	_ = rng
	// Two noisy instances of the same workload should be closer than two
	// different workloads.
	a1 := embed(workload.YCSBA(), 10)
	a2 := embed(workload.YCSBA(), 11)
	h := embed(workload.TPCH(1), 12)
	if !(Euclidean(a1, a2) < Euclidean(a1, h)) {
		t.Fatalf("same-workload distance %v should beat cross-workload %v",
			Euclidean(a1, a2), Euclidean(a1, h))
	}
}

func TestDistances(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if Euclidean(a, a) != 0 || math.Abs(Euclidean(a, b)-math.Sqrt2) > 1e-12 {
		t.Fatal("euclidean wrong")
	}
	if Cosine(a, a) > 1e-12 {
		t.Fatal("cosine self distance should be 0")
	}
	if math.Abs(Cosine(a, b)-1) > 1e-12 {
		t.Fatal("orthogonal cosine distance should be 1")
	}
	if !math.IsInf(Euclidean(a, []float64{1}), 1) {
		t.Fatal("length mismatch should be Inf")
	}
	if Cosine([]float64{0, 0}, a) != 1 {
		t.Fatal("zero vector cosine should be 1")
	}
}

func TestKMeansClusterRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var points [][]float64
	var labels []int
	centers := [][]float64{{0, 0}, {5, 5}, {0, 5}}
	for c, ctr := range centers {
		for i := 0; i < 30; i++ {
			points = append(points, []float64{
				ctr[0] + rng.NormFloat64()*0.3,
				ctr[1] + rng.NormFloat64()*0.3,
			})
			labels = append(labels, c)
		}
	}
	assign, centroids, err := KMeans(points, 3, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(centroids) != 3 {
		t.Fatalf("centroids = %d", len(centroids))
	}
	if p := Purity(assign, labels); p < 0.95 {
		t.Fatalf("purity = %v", p)
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, _, err := KMeans(nil, 2, 10, rng); err == nil {
		t.Fatal("empty points should error")
	}
	pts := [][]float64{{1}, {2}}
	if _, _, err := KMeans(pts, 3, 10, rng); err == nil {
		t.Fatal("k > n should error")
	}
	if _, _, err := KMeans(pts, 0, 10, rng); err == nil {
		t.Fatal("k = 0 should error")
	}
}

func TestPurityEdgeCases(t *testing.T) {
	if Purity(nil, nil) != 0 {
		t.Fatal("empty purity should be 0")
	}
	if Purity([]int{0, 0}, []int{1, 1}) != 1 {
		t.Fatal("single cluster single label should be pure")
	}
	if p := Purity([]int{0, 0}, []int{0, 1}); p != 0.5 {
		t.Fatalf("mixed purity = %v", p)
	}
}

func TestIndexNearest(t *testing.T) {
	var ix Index
	if _, _, err := ix.Nearest([]float64{1}); err == nil {
		t.Fatal("empty index should error")
	}
	ix.Add("a", []float64{0, 0})
	ix.Add("b", []float64{10, 10})
	label, dist, err := ix.Nearest([]float64{1, 1})
	if err != nil || label != "a" {
		t.Fatalf("nearest = %v %v %v", label, dist, err)
	}
	if ix.Len() != 2 {
		t.Fatal("len")
	}
}

func TestIndexWorkloadLookup(t *testing.T) {
	// Index standard workloads by noisy telemetry, then look up fresh
	// noisy instances: most should resolve to their own family.
	var ix Index
	suite := []workload.Descriptor{
		workload.YCSBA(), workload.YCSBC(), workload.YCSBE(), workload.TPCC(), workload.TPCH(1),
	}
	for i, d := range suite {
		ix.Add(d.Name, EmbedTelemetry(Synthesize(d, 96, rand.New(rand.NewSource(int64(i))))))
	}
	correct := 0
	for i, d := range suite {
		probe := EmbedTelemetry(Synthesize(d, 96, rand.New(rand.NewSource(int64(100+i)))))
		label, _, err := ix.Nearest(probe)
		if err != nil {
			t.Fatal(err)
		}
		if label == d.Name {
			correct++
		}
	}
	if correct < 4 {
		t.Fatalf("lookup correct %d/5", correct)
	}
}

func TestShiftDetector(t *testing.T) {
	sd := NewShiftDetector(1.0)
	// Reference phase: stable embeddings near origin.
	for i := 0; i < 10; i++ {
		if sd.Observe([]float64{0.01 * float64(i), 0}) {
			t.Fatal("detected during reference phase")
		}
	}
	// Stable continues: no detection.
	for i := 0; i < 20; i++ {
		if sd.Observe([]float64{0.05, 0.05}) {
			t.Fatal("false positive on stable stream")
		}
	}
	// Shift: far embeddings for >= Consecutive steps.
	fired := 0
	firedAt := -1
	for i := 0; i < 10; i++ {
		if sd.Observe([]float64{5, 5}) {
			fired++
			firedAt = i
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly once", fired)
	}
	if firedAt != 2 { // third consecutive drifted step (0-indexed)
		t.Fatalf("fired at step %d, want 2", firedAt)
	}
	if !sd.Detected() {
		t.Fatal("Detected() should be true")
	}
}

func TestShiftDetectorIgnoresBlips(t *testing.T) {
	sd := NewShiftDetector(1.0)
	for i := 0; i < 10; i++ {
		sd.Observe([]float64{0, 0})
	}
	// Single-step blips never make Consecutive.
	for i := 0; i < 30; i++ {
		var v []float64
		if i%5 == 0 {
			v = []float64{5, 5}
		} else {
			v = []float64{0, 0}
		}
		if sd.Observe(v) {
			t.Fatal("blips should not trigger detection")
		}
	}
}

func TestSynthesizeBenchmarkRecoversMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bases := []workload.Descriptor{workload.YCSBA(), workload.YCSBC(), workload.TPCH(1)}
	// Target: a known mixture.
	trueMix, err := workload.Mix(bases, []float64{0.7, 0.3, 0})
	if err != nil {
		t.Fatal(err)
	}
	target := EmbedDescriptor(trueMix)
	synth, weights, err := SynthesizeBenchmark(target, bases, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := Euclidean(EmbedDescriptor(synth), target); d > 0.05 {
		t.Fatalf("synthetic embedding distance = %v", d)
	}
	// Weights roughly recover the mixture (up to embedding degeneracy).
	if weights[2] > 0.3 {
		t.Fatalf("tpch weight = %v, want small", weights[2])
	}
	sum := weights[0] + weights[1] + weights[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights not normalized: %v", weights)
	}
}

func TestSynthesizeBenchmarkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, _, err := SynthesizeBenchmark([]float64{1}, nil, 10, rng); err == nil {
		t.Fatal("no bases should error")
	}
}

func TestKMeansRestartsAtLeastAsGood(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var points [][]float64
	var labels []int
	centers := [][]float64{{0, 0}, {4, 0}, {0, 4}, {4, 4}}
	for c, ctr := range centers {
		for i := 0; i < 20; i++ {
			points = append(points, []float64{
				ctr[0] + rng.NormFloat64()*0.3,
				ctr[1] + rng.NormFloat64()*0.3,
			})
			labels = append(labels, c)
		}
	}
	assign, cents, err := KMeansRestarts(points, 4, 100, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 4 {
		t.Fatalf("centroids = %d", len(cents))
	}
	if p := Purity(assign, labels); p < 0.95 {
		t.Fatalf("purity = %v", p)
	}
	if _, _, err := KMeansRestarts(nil, 2, 10, 3, rng); err == nil {
		t.Fatal("empty input should error")
	}
}
