// Package workloadid implements workload identification (tutorial slides
// 88-93): synthesizing telemetry time series from workload descriptors,
// embedding telemetry and query mixes into vectors, clustering and
// nearest-neighbour lookup for config reuse, workload-shift detection, and
// synthetic benchmark generation (find the mixture of base workloads whose
// embedding matches production telemetry — the Stitcher idea).
package workloadid

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/stats"
	"autotune/internal/workload"
)

// Telemetry channel indices produced by Synthesize.
const (
	ChanCPU = iota
	ChanReadMB
	ChanWriteMB
	ChanOps
	ChanP95
	NumChannels
)

// Synthesize generates n steps of NumChannels-channel telemetry for a
// workload: stable levels derived from the descriptor plus a periodic
// component and noise. It is the stand-in for production monitoring data.
func Synthesize(d workload.Descriptor, n int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, NumChannels)
	for c := range out {
		out[c] = make([]float64, n)
	}
	cpuLevel := clamp01(d.RequestRate*(0.010+0.002*d.ScanLength/50)/8000 + 0.1)
	readLevel := d.RequestRate * (d.ReadRatio*0.3 + d.ScanRatio*3) * d.RecordBytes / 1024 / 1024
	writeLevel := d.RequestRate * d.WriteFraction() * d.RecordBytes / 1024 / 1024
	p95Level := 0.5 + 5*d.ScanRatio + 2*d.WriteFraction()
	// Period reflects burstiness: skewed point workloads jitter faster
	// than long analytical scans.
	period := 12.0 + 36*d.ScanRatio
	for t := 0; t < n; t++ {
		wave := math.Sin(2 * math.Pi * float64(t) / period)
		jitter := func(scale float64) float64 {
			if rng == nil {
				return 0
			}
			return rng.NormFloat64() * scale
		}
		out[ChanCPU][t] = math.Max(0, cpuLevel*(1+0.15*wave)+jitter(0.02))
		out[ChanReadMB][t] = math.Max(0, readLevel*(1+0.2*wave)+jitter(readLevel*0.05+0.01))
		out[ChanWriteMB][t] = math.Max(0, writeLevel*(1+0.2*wave)+jitter(writeLevel*0.05+0.01))
		out[ChanOps][t] = math.Max(0, d.RequestRate*(1+0.1*wave)+jitter(d.RequestRate*0.03+0.1))
		out[ChanP95][t] = math.Max(0, p95Level*(1+0.25*wave)+jitter(p95Level*0.08))
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EmbedTelemetry maps a multichannel time series to a fixed-length feature
// vector: per channel mean, std, p95, lag-1 autocorrelation, and three DFT
// band energies. Channels are scale-normalized so heterogeneous units
// coexist.
func EmbedTelemetry(series [][]float64) []float64 {
	var out []float64
	for _, ch := range series {
		out = append(out, channelFeatures(ch)...)
	}
	return out
}

func channelFeatures(x []float64) []float64 {
	if len(x) == 0 {
		return make([]float64, 7)
	}
	mean := stats.Mean(x)
	sd := stats.StdDev(x)
	p95 := stats.Percentile(x, 95)
	scale := math.Max(math.Abs(mean), 1e-9)
	// Lag-1 autocorrelation of the normalized series.
	ac := 0.0
	if len(x) > 2 && sd > 0 {
		var s float64
		for i := 1; i < len(x); i++ {
			s += (x[i] - mean) * (x[i-1] - mean)
		}
		ac = s / (float64(len(x)-1) * sd * sd)
	}
	lo, mid, hi := dftBands(x, mean)
	total := lo + mid + hi + 1e-12
	return []float64{
		math.Log1p(math.Abs(mean)), // level (log for heavy-tailed units)
		sd / scale,                 // coefficient of variation
		p95 / scale,                // tail ratio
		ac,
		lo / total, mid / total, hi / total,
	}
}

// dftBands returns spectral energy in low/mid/high frequency thirds of the
// centered series (plain O(n^2) DFT; telemetry windows are short).
func dftBands(x []float64, mean float64) (lo, mid, hi float64) {
	n := len(x)
	if n < 4 {
		return 0, 0, 0
	}
	half := n / 2
	for k := 1; k <= half; k++ {
		var re, im float64
		for t := 0; t < n; t++ {
			phi := 2 * math.Pi * float64(k) * float64(t) / float64(n)
			v := x[t] - mean
			re += v * math.Cos(phi)
			im -= v * math.Sin(phi)
		}
		e := re*re + im*im
		switch {
		case k <= half/3:
			lo += e
		case k <= 2*half/3:
			mid += e
		default:
			hi += e
		}
	}
	return lo, mid, hi
}

// EmbedDescriptor maps a workload descriptor directly to a feature vector
// (the "query mix histogram" view available when query logs are
// accessible).
func EmbedDescriptor(d workload.Descriptor) []float64 {
	return []float64{
		d.ReadRatio, d.UpdateRatio, d.InsertRatio, d.ScanRatio, d.RMWRatio(),
		d.Skew,
		math.Log1p(d.WorkingSetMB) / 12,
		math.Log1p(d.ScanLength) / 12,
		math.Log1p(d.RequestRate) / 12,
	}
}

// Euclidean returns the L2 distance between equal-length vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Cosine returns 1 - cosine similarity (0 = identical direction).
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// KMeans clusters vectors into k groups with k-means++ seeding and Lloyd
// iterations. It returns per-point assignments and the centroids.
func KMeans(points [][]float64, k int, iters int, rng *rand.Rand) (assign []int, centroids [][]float64, err error) {
	if len(points) == 0 {
		return nil, nil, errors.New("workloadid: no points")
	}
	if k <= 0 || k > len(points) {
		return nil, nil, fmt.Errorf("workloadid: k=%d with %d points", k, len(points))
	}
	if iters <= 0 {
		iters = 50
	}
	dim := len(points[0])
	// k-means++ seeding.
	centroids = append(centroids, append([]float64(nil), points[rng.Intn(len(points))]...))
	for len(centroids) < k {
		dists := make([]float64, len(points))
		total := 0.0
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if e := Euclidean(p, c); e < d {
					d = e
				}
			}
			dists[i] = d * d
			total += dists[i]
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(points) - 1
		for i, d := range dists {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	assign = make([]int, len(points))
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := Euclidean(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			counts[assign[i]]++
			for j, v := range p {
				sums[assign[i]][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty cluster at a random point.
				centroids[c] = append([]float64(nil), points[rng.Intn(len(points))]...)
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	return assign, centroids, nil
}

// KMeansRestarts runs KMeans `restarts` times and returns the clustering
// with the lowest within-cluster sum of squared distances (inertia) —
// k-means++ reduces but does not eliminate bad local optima.
func KMeansRestarts(points [][]float64, k, iters, restarts int, rng *rand.Rand) (assign []int, centroids [][]float64, err error) {
	if restarts < 1 {
		restarts = 1
	}
	bestInertia := math.Inf(1)
	for r := 0; r < restarts; r++ {
		a, c, e := KMeans(points, k, iters, rng)
		if e != nil {
			return nil, nil, e
		}
		inertia := 0.0
		for i, p := range points {
			d := Euclidean(p, c[a[i]])
			inertia += d * d
		}
		if inertia < bestInertia {
			bestInertia, assign, centroids = inertia, a, c
		}
	}
	return assign, centroids, nil
}

// Purity scores a clustering against ground-truth labels: the fraction of
// points belonging to their cluster's majority label.
func Purity(assign []int, labels []int) float64 {
	if len(assign) != len(labels) || len(assign) == 0 {
		return 0
	}
	counts := map[int]map[int]int{}
	for i, a := range assign {
		if counts[a] == nil {
			counts[a] = map[int]int{}
		}
		counts[a][labels[i]]++
	}
	correct := 0
	for _, byLabel := range counts {
		best := 0
		for _, n := range byLabel {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

// Index is a labelled embedding store for nearest-workload lookup.
type Index struct {
	labels []string
	vecs   [][]float64
}

// Add stores a labelled embedding.
func (ix *Index) Add(label string, vec []float64) {
	ix.labels = append(ix.labels, label)
	ix.vecs = append(ix.vecs, append([]float64(nil), vec...))
}

// Len returns the number of stored embeddings.
func (ix *Index) Len() int { return len(ix.labels) }

// Nearest returns the label and distance of the closest stored embedding.
func (ix *Index) Nearest(vec []float64) (label string, dist float64, err error) {
	if len(ix.vecs) == 0 {
		return "", 0, errors.New("workloadid: empty index")
	}
	best, bestD := 0, math.Inf(1)
	for i, v := range ix.vecs {
		if d := Euclidean(vec, v); d < bestD {
			best, bestD = i, d
		}
	}
	return ix.labels[best], bestD, nil
}

// ShiftDetector watches a stream of embeddings and reports when the
// workload has drifted from the reference window: the rolling mean
// distance to the reference centroid must exceed Threshold for Consecutive
// steps. CUSUM-flavoured but intentionally simple and explainable.
type ShiftDetector struct {
	// RefWindow is how many initial embeddings form the reference
	// (default 10).
	RefWindow int
	// Threshold is the distance that counts as drifted (default 1).
	Threshold float64
	// Consecutive is how many consecutive drifted steps trigger
	// detection (default 3).
	Consecutive int

	ref      [][]float64
	centroid []float64
	streak   int
	steps    int
	detected bool
}

// NewShiftDetector returns a detector with the given threshold and
// defaults elsewhere.
func NewShiftDetector(threshold float64) *ShiftDetector {
	return &ShiftDetector{RefWindow: 10, Threshold: threshold, Consecutive: 3}
}

// Observe feeds one embedding; it returns true exactly once, on the step
// the shift is first detected.
func (sd *ShiftDetector) Observe(vec []float64) bool {
	sd.steps++
	if len(sd.ref) < sd.RefWindow {
		sd.ref = append(sd.ref, append([]float64(nil), vec...))
		if len(sd.ref) == sd.RefWindow {
			sd.centroid = meanVec(sd.ref)
		}
		return false
	}
	if sd.detected {
		return false
	}
	if Euclidean(vec, sd.centroid) > sd.Threshold {
		sd.streak++
	} else {
		sd.streak = 0
	}
	if sd.streak >= sd.Consecutive {
		sd.detected = true
		return true
	}
	return false
}

// Detected reports whether a shift has been flagged.
func (sd *ShiftDetector) Detected() bool { return sd.detected }

// Steps returns how many embeddings have been observed.
func (sd *ShiftDetector) Steps() int { return sd.steps }

func meanVec(vs [][]float64) []float64 {
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			out[i] += x
		}
	}
	for i := range out {
		out[i] /= float64(len(vs))
	}
	return out
}

// SynthesizeBenchmark searches for nonnegative mixture weights over the
// base workloads whose descriptor embedding best matches the target
// embedding (EmbedDescriptor space): random Dirichlet starts refined by
// coordinate perturbation. It returns the mixed descriptor and weights.
func SynthesizeBenchmark(target []float64, bases []workload.Descriptor, iters int, rng *rand.Rand) (workload.Descriptor, []float64, error) {
	if len(bases) == 0 {
		return workload.Descriptor{}, nil, errors.New("workloadid: no base workloads")
	}
	if iters <= 0 {
		iters = 400
	}
	score := func(w []float64) float64 {
		mixed, err := workload.Mix(bases, w)
		if err != nil {
			return math.Inf(1)
		}
		return Euclidean(EmbedDescriptor(mixed), target)
	}
	best := make([]float64, len(bases))
	for i := range best {
		best[i] = 1
	}
	bestScore := score(best)
	for it := 0; it < iters; it++ {
		var cand []float64
		if it%2 == 0 { // fresh Dirichlet draw
			cand = make([]float64, len(bases))
			for i := range cand {
				cand[i] = rng.ExpFloat64()
			}
		} else { // local perturbation of the incumbent
			cand = append([]float64(nil), best...)
			i := rng.Intn(len(cand))
			cand[i] = math.Max(0, cand[i]+rng.NormFloat64()*0.3)
		}
		if s := score(cand); s < bestScore {
			best, bestScore = cand, s
		}
	}
	mixed, err := workload.Mix(bases, best)
	if err != nil {
		return workload.Descriptor{}, nil, err
	}
	// Normalize weights for reporting.
	sum := 0.0
	for _, w := range best {
		sum += w
	}
	for i := range best {
		best[i] /= sum
	}
	return mixed, best, nil
}
