package gp

import "sync"

// Workspace holds prediction scratch (the k* vector and the triangular
// solve result) so hot loops can call PredictWS without per-call heap
// allocation. A Workspace belongs to one goroutine at a time; Predict and
// PredictN draw from an internal pool, while tight callers (the acquisition
// search) keep one per worker via NewWorkspace.
type Workspace struct {
	kstar []float64
	v     []float64
}

// NewWorkspace returns an empty workspace; buffers grow on first use and
// are then reused.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure grows the buffers to capacity n. Lengths are managed by callers.
func (w *Workspace) ensure(n int) {
	if cap(w.kstar) < n {
		w.kstar = make([]float64, n, n+n/2+8)
	}
	if cap(w.v) < n {
		w.v = make([]float64, n, n+n/2+8)
	}
}

var wsPool = sync.Pool{New: func() any { return &Workspace{} }}
