package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestKernelBasics(t *testing.T) {
	x := []float64{0.3, 0.4}
	y := []float64{1, 1.2}
	kernels := []Kernel{
		NewRBF(1),
		NewMatern(0.5, 1),
		NewMatern(1.5, 1),
		NewMatern(2.5, 1),
		&Constant{Value: 2},
		&Linear{Variance: 1},
		&Periodic{Lengthscale: 1, Period: 2},
		Scale(3, NewRBF(0.5)),
		&Sum{A: NewRBF(1), B: &Constant{Value: 0.1}},
		&Product{A: NewRBF(1), B: NewMatern(1.5, 1)},
	}
	for _, k := range kernels {
		// Symmetry.
		if math.Abs(k.Eval(x, y)-k.Eval(y, x)) > 1e-15 {
			t.Errorf("%s: not symmetric", k)
		}
		// Hyper round trip.
		h := k.Hyper()
		k2 := k.Clone()
		k2.SetHyper(h)
		if math.Abs(k.Eval(x, y)-k2.Eval(x, y)) > 1e-12 {
			t.Errorf("%s: hyper round trip changed kernel", k)
		}
		// Clone independence.
		h2 := make([]float64, len(h))
		for i := range h2 {
			h2[i] = h[i] + 1
		}
		k2.SetHyper(h2)
		if k.Eval(x, y) == k2.Eval(x, y) && k.String() != "Const(2)" {
			// Constant with different value must differ; others too except
			// pathological coincidences.
			if _, isConst := k.(*Constant); !isConst {
				t.Errorf("%s: clone shares state", k)
			}
		}
	}
}

func TestRBFDecay(t *testing.T) {
	k := NewRBF(1)
	o := []float64{0}
	if k.Eval(o, o) != 1 {
		t.Fatal("k(x,x) != 1")
	}
	near := k.Eval(o, []float64{0.1})
	far := k.Eval(o, []float64{3})
	if !(near > far) {
		t.Fatal("RBF should decay with distance")
	}
	// Shorter lengthscale decays faster.
	sharp := NewRBF(0.1)
	if !(sharp.Eval(o, []float64{0.5}) < k.Eval(o, []float64{0.5})) {
		t.Fatal("short lengthscale should decay faster")
	}
}

func TestMaternApproachesRBF(t *testing.T) {
	// Matérn 5/2 is closer to RBF than Matérn 1/2 at moderate distance.
	o := []float64{0}
	p := []float64{0.5}
	rbf := NewRBF(1).Eval(o, p)
	m12 := NewMatern(0.5, 1).Eval(o, p)
	m52 := NewMatern(2.5, 1).Eval(o, p)
	if !(math.Abs(m52-rbf) < math.Abs(m12-rbf)) {
		t.Fatalf("m52=%v m12=%v rbf=%v", m52, m12, rbf)
	}
}

func TestMaternNuSnapping(t *testing.T) {
	if NewMatern(0.9, 1).Nu != 0.5 || NewMatern(1.7, 1).Nu != 1.5 || NewMatern(9, 1).Nu != 2.5 {
		t.Fatal("nu snapping wrong")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	g := New(NewRBF(1), 1e-6)
	if _, _, err := g.Predict([]float64{0}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.LogMarginalLikelihood(); !errors.Is(err, ErrNotFitted) {
		t.Fatal("LML before fit should error")
	}
	if err := g.Fit(nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty fit err = %v", err)
	}
}

func TestInterpolation(t *testing.T) {
	// Noise-free GP interpolates the training data.
	g := New(NewRBF(0.5), 1e-9)
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := []float64{0, 1, 0, -1, 0}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mu, v, err := g.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mu-y[i]) > 1e-3 {
			t.Fatalf("interp at %v: %v vs %v", x[i], mu, y[i])
		}
		if v > 1e-3 {
			t.Fatalf("variance at training point = %v", v)
		}
	}
	// Variance grows away from the data.
	_, vFar, _ := g.Predict([]float64{3})
	_, vNear, _ := g.Predict([]float64{0.1})
	if !(vFar > vNear) {
		t.Fatalf("vFar=%v vNear=%v", vFar, vNear)
	}
}

func TestPredictionAccuracySmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(x float64) float64 { return math.Sin(3*x) + 0.5*x }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, f(x))
	}
	g := New(Scale(1, NewMatern(2.5, 0.3)), 1e-8)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := rng.Float64()
		mu, _, err := g.Predict([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mu-f(x)) > 0.05 {
			t.Fatalf("prediction at %v: %v vs %v", x, mu, f(x))
		}
	}
}

func TestTargetNormalizationInvariance(t *testing.T) {
	// Predictions should be correct even for targets far from zero.
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{10000, 10010, 10020}
	g := New(Scale(1, NewRBF(1)), 1e-8)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	mu, _, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-10010) > 1 {
		t.Fatalf("mu = %v, want ~10010", mu)
	}
}

func TestConstantTargets(t *testing.T) {
	// Degenerate case: all targets equal (yScale would be 0).
	xs := [][]float64{{0}, {1}}
	ys := []float64{5, 5}
	g := New(NewRBF(1), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	mu, _, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-5) > 1e-6 {
		t.Fatalf("mu = %v", mu)
	}
}

func TestLMLPrefersGoodLengthscale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Smooth function sampled on a grid: a reasonable lengthscale should
	// beat a wildly small one on LML.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		x := float64(i) / 19
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(2*math.Pi*x)+0.01*rng.NormFloat64())
	}
	good := New(Scale(1, NewRBF(0.3)), 1e-4)
	bad := New(Scale(1, NewRBF(0.001)), 1e-4)
	if err := good.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := bad.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	lg, _ := good.LogMarginalLikelihood()
	lb, _ := bad.LogMarginalLikelihood()
	if !(lg > lb) {
		t.Fatalf("LML good=%v bad=%v", lg, lb)
	}
}

func TestFitHyperImprovesLML(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		x := float64(i) / 19
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(2*math.Pi*x))
	}
	// Start from a bad lengthscale.
	g := New(Scale(1, NewRBF(0.003)), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	before, _ := g.LogMarginalLikelihood()
	if err := g.FitHyper(xs, ys, 3, rng); err != nil {
		t.Fatal(err)
	}
	after, _ := g.LogMarginalLikelihood()
	if !(after > before) {
		t.Fatalf("FitHyper did not improve LML: %v -> %v", before, after)
	}
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestSampleAtRespectsPosterior(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := [][]float64{{0}, {1}}
	ys := []float64{0, 2}
	g := New(Scale(1, NewRBF(0.5)), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	// At training points samples should be tight around targets.
	pts := [][]float64{{0}, {1}, {0.5}}
	var atTrain0, atMid []float64
	for i := 0; i < 200; i++ {
		s, err := g.SampleAt(pts, rng)
		if err != nil {
			t.Fatal(err)
		}
		atTrain0 = append(atTrain0, s[0])
		atMid = append(atMid, s[2])
	}
	var sum0, sumSq0 float64
	for _, v := range atTrain0 {
		sum0 += v
	}
	mean0 := sum0 / float64(len(atTrain0))
	for _, v := range atTrain0 {
		sumSq0 += (v - mean0) * (v - mean0)
	}
	if math.Abs(mean0) > 0.1 {
		t.Fatalf("sample mean at training point = %v, want ~0", mean0)
	}
	// Mid-point samples should vary more than training-point samples.
	var sumM, sumSqM float64
	for _, v := range atMid {
		sumM += v
	}
	meanM := sumM / float64(len(atMid))
	for _, v := range atMid {
		sumSqM += (v - meanM) * (v - meanM)
	}
	if !(sumSqM > sumSq0) {
		t.Fatalf("mid variance %v should exceed train variance %v", sumSqM, sumSq0)
	}
}

// randPoints draws n points in the unit cube of dimension d.
func randPoints(n, d int, rng *rand.Rand) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		xs[i] = p
	}
	return xs
}

// TestObserveMatchesFit is the numerical-equivalence property the
// incremental path must satisfy: k rank-1 Observes produce the same model
// as one full Fit on the combined data, to 1e-8 on predictions and log
// marginal likelihood.
func TestObserveMatchesFit(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		const d, n0, k = 3, 6, 40
		xs := randPoints(n0+k, d, rng)
		f := func(p []float64) float64 {
			return math.Sin(3*p[0]) + p[1]*p[1] - 0.5*p[2]
		}
		ys := make([]float64, len(xs))
		for i, p := range xs {
			ys[i] = f(p)
		}

		full := New(Scale(1, NewMatern(2.5, 0.3)), 1e-6)
		if err := full.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		incr := New(Scale(1, NewMatern(2.5, 0.3)), 1e-6)
		if err := incr.Fit(xs[:n0], ys[:n0]); err != nil {
			t.Fatal(err)
		}
		for i := n0; i < n0+k; i++ {
			if err := incr.Observe(xs[i], ys[i]); err != nil {
				t.Fatalf("seed %d: observe %d: %v", seed, i, err)
			}
		}
		if incr.N() != full.N() {
			t.Fatalf("N = %d vs %d", incr.N(), full.N())
		}

		probes := randPoints(25, d, rng)
		for _, p := range probes {
			mf, vf, err := full.Predict(p)
			if err != nil {
				t.Fatal(err)
			}
			mi, vi, err := incr.Predict(p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mf-mi) > 1e-8 || math.Abs(vf-vi) > 1e-8 {
				t.Fatalf("seed %d: prediction diverged at %v: mean %v vs %v, var %v vs %v",
					seed, p, mf, mi, vf, vi)
			}
		}
		lf, err := full.LogMarginalLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		li, err := incr.LogMarginalLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lf-li) > 1e-8 {
			t.Fatalf("seed %d: LML diverged: %v vs %v", seed, lf, li)
		}
	}
}

// TestObserveOnUnfittedModel: Observe before any Fit must behave like a
// one-point Fit, and keep working as points accumulate.
func TestObserveOnUnfittedModel(t *testing.T) {
	g := New(NewRBF(0.5), 1e-6)
	for i := 0; i < 5; i++ {
		x := float64(i) / 4
		if err := g.Observe([]float64{x}, x*x); err != nil {
			t.Fatal(err)
		}
	}
	mu, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-0.25) > 0.05 {
		t.Fatalf("mu = %v, want ~0.25", mu)
	}
}

// TestObserveAfterHyperChange: changing kernel hyperparameters invalidates
// the cached factorization; Observe must detect the signature mismatch and
// refit rather than mixing factors from different kernels.
func TestObserveAfterHyperChange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := randPoints(10, 2, rng)
	ys := make([]float64, len(xs))
	for i, p := range xs {
		ys[i] = p[0] + p[1]
	}
	g := New(Scale(1, NewRBF(0.3)), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	g.Kernel().SetHyper([]float64{math.Log(2), math.Log(0.6)})
	xNew := []float64{0.5, 0.5}
	if err := g.Observe(xNew, 1.0); err != nil {
		t.Fatal(err)
	}
	// Reference: a fresh GP with the new hyperparameters fitted on all 11.
	ref := New(Scale(2, NewRBF(0.6)), 1e-6)
	if err := ref.Fit(append(append([][]float64{}, xs...), xNew), append(append([]float64{}, ys...), 1.0)); err != nil {
		t.Fatal(err)
	}
	for _, p := range randPoints(10, 2, rng) {
		mg, vg, _ := g.Predict(p)
		mr, vr, _ := ref.Predict(p)
		if math.Abs(mg-mr) > 1e-8 || math.Abs(vg-vr) > 1e-8 {
			t.Fatalf("post-hyper-change observe diverged: %v/%v vs %v/%v", mg, vg, mr, vr)
		}
	}
}

// TestObserveNearDuplicateFallsBack: absorbing an exact duplicate of a
// training point with tiny noise pushes the bordered system to the edge of
// positive definiteness; Observe must survive (rank-1 or fallback refit).
func TestObserveNearDuplicateFallsBack(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{0, 1, 0}
	g := New(NewRBF(0.5), 1e-10)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeated duplicates compound the conditioning
		if err := g.Observe([]float64{0.5}, 1); err != nil {
			t.Fatalf("dup %d: %v", i, err)
		}
	}
	mu, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-1) > 1e-3 {
		t.Fatalf("mu = %v, want ~1", mu)
	}
}

// TestFitPrefixReuseMatchesFresh: refitting a grown history with unchanged
// hyperparameters reuses the cached gram block; the result must be
// identical to a cache-cold fit.
func TestFitPrefixReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := randPoints(30, 3, rng)
	ys := make([]float64, len(xs))
	for i, p := range xs {
		ys[i] = math.Cos(2 * p[0] * p[1] * p[2])
	}
	warm := New(Scale(1, NewMatern(2.5, 0.4)), 1e-6)
	if err := warm.Fit(xs[:20], ys[:20]); err != nil {
		t.Fatal(err)
	}
	if err := warm.Fit(xs, ys); err != nil { // prefix-extension refit
		t.Fatal(err)
	}
	cold := New(Scale(1, NewMatern(2.5, 0.4)), 1e-6)
	if err := cold.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for _, p := range randPoints(10, 3, rng) {
		mw, vw, _ := warm.Predict(p)
		mc, vc, _ := cold.Predict(p)
		if mw != mc || vw != vc {
			t.Fatalf("prefix-reuse fit differs from cold fit: %v/%v vs %v/%v", mw, vw, mc, vc)
		}
	}
}

// TestCloneIndependence: observations absorbed by a clone must not leak
// into the original — the contract constant-liar batching relies on.
func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := randPoints(12, 2, rng)
	ys := make([]float64, len(xs))
	for i, p := range xs {
		ys[i] = p[0] - p[1]
	}
	g := New(Scale(1, NewRBF(0.4)), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.7}
	m0, v0, _ := g.Predict(probe)
	c := g.Clone()
	for i := 0; i < 5; i++ {
		if err := c.Observe([]float64{rng.Float64(), rng.Float64()}, -5); err != nil {
			t.Fatal(err)
		}
	}
	m1, v1, _ := g.Predict(probe)
	if m0 != m1 || v0 != v1 {
		t.Fatal("observing on a clone mutated the original")
	}
	if c.N() != g.N()+5 {
		t.Fatalf("clone N = %d, want %d", c.N(), g.N()+5)
	}
	if c.MinY() != -5 {
		t.Fatalf("clone MinY = %v", c.MinY())
	}
}

func TestMinY(t *testing.T) {
	g := New(NewRBF(1), 1e-6)
	if g.MinY() != 0 {
		t.Fatal("MinY before fit should be 0")
	}
	if err := g.Fit([][]float64{{0}, {0.5}, {1}}, []float64{3, -2, 7}); err != nil {
		t.Fatal(err)
	}
	if g.MinY() != -2 {
		t.Fatalf("MinY = %v", g.MinY())
	}
}

func TestSetNoiseFloor(t *testing.T) {
	g := New(NewRBF(1), 0)
	if g.Noise() < 1e-10 {
		t.Fatal("noise floor not applied in New")
	}
	g.SetNoise(-5)
	if g.Noise() < 1e-10 {
		t.Fatal("noise floor not applied in SetNoise")
	}
}

func TestKernelDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	NewRBF(1).Eval([]float64{1}, []float64{1, 2})
}
