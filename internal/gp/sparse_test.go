package gp

import (
	"math"
	"testing"
)

// TestSparseMatchesDenseBelowBudget pins the tier contract bitwise: while
// the history fits the inducing budget, the sparse model IS the dense
// model — same Fit, same rank-1 Observe, same bits out of Predict.
func TestSparseMatchesDenseBelowBudget(t *testing.T) {
	xs, ys := perfTrainingData(60, 5, 11)
	probes, _ := perfTrainingData(25, 5, 12)
	for name, k := range perfKernels() {
		dense := New(k.Clone(), 1e-6)
		sparse := NewSparse(k.Clone(), 1e-6, 128, 42)
		if err := dense.Fit(xs[:20], ys[:20]); err != nil {
			t.Fatalf("%s: dense fit: %v", name, err)
		}
		if err := sparse.Fit(xs[:20], ys[:20]); err != nil {
			t.Fatalf("%s: sparse fit: %v", name, err)
		}
		for i := 20; i < len(xs); i++ {
			if err := dense.Observe(xs[i], ys[i]); err != nil {
				t.Fatalf("%s: dense observe %d: %v", name, i, err)
			}
			if err := sparse.Observe(xs[i], ys[i]); err != nil {
				t.Fatalf("%s: sparse observe %d: %v", name, i, err)
			}
		}
		if got, want := sparse.ActiveN(), dense.N(); got != want {
			t.Fatalf("%s: active %d != dense n %d", name, got, want)
		}
		if sparse.MinY() != dense.MinY() {
			t.Fatalf("%s: MinY %v != %v", name, sparse.MinY(), dense.MinY())
		}
		for _, p := range probes {
			dm, dv, err := dense.Predict(p)
			if err != nil {
				t.Fatalf("%s: dense predict: %v", name, err)
			}
			sm, sv, err := sparse.Predict(p)
			if err != nil {
				t.Fatalf("%s: sparse predict: %v", name, err)
			}
			if dm != sm || dv != sv {
				t.Fatalf("%s: below-budget sparse diverged: (%v,%v) != (%v,%v)", name, sm, sv, dm, dv)
			}
		}
	}
}

// TestSparseSelectionDeterministic feeds two instances the same deep
// history and requires identical inducing sets and bitwise-identical
// predictions: selection must be a pure function of (history, seed).
func TestSparseSelectionDeterministic(t *testing.T) {
	xs, ys := perfTrainingData(400, 6, 7)
	probes, _ := perfTrainingData(10, 6, 8)
	build := func() *SparseGP {
		s := NewSparse(NewRBF(0.4), 1e-6, 64, 99)
		if err := s.Fit(xs[:50], ys[:50]); err != nil {
			t.Fatalf("fit: %v", err)
		}
		for i := 50; i < len(xs); i++ {
			if err := s.Observe(xs[i], ys[i]); err != nil {
				t.Fatalf("observe %d: %v", i, err)
			}
		}
		return s
	}
	a, b := build(), build()
	if !intsEqual(a.active, b.active) {
		t.Fatalf("inducing sets diverged:\n%v\n%v", a.active, b.active)
	}
	for _, p := range probes {
		am, av, _ := a.Predict(p)
		bm, bv, _ := b.Predict(p)
		if am != bm || av != bv {
			t.Fatalf("predictions diverged: (%v,%v) != (%v,%v)", am, av, bm, bv)
		}
	}
	st := a.Stats()
	if st.Skipped == 0 || st.Rebuilds == 0 {
		t.Fatalf("deep history should exercise skip and rebuild paths: %+v", st)
	}
}

// TestSparseBudgetBounded pins the memory contract: the inducing set
// never outgrows budget + rebuildEvery (incumbent absorbs between
// reselections), no matter how deep the history gets.
func TestSparseBudgetBounded(t *testing.T) {
	xs, ys := perfTrainingData(800, 4, 21)
	s := NewSparse(NewMatern(2.5, 0.3), 1e-6, 48, 5)
	for i := range xs {
		// Drive the incumbent down repeatedly so the absorb-on-improvement
		// path fires past saturation.
		y := ys[i] - 0.01*float64(i)
		if err := s.Observe(xs[i], y); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		if got, max := s.ActiveN(), 48+24; got > max {
			t.Fatalf("inducing set grew to %d > %d at n=%d", got, max, i+1)
		}
	}
	if s.N() != len(xs) {
		t.Fatalf("history lost: N=%d want %d", s.N(), len(xs))
	}
	if st := s.Stats(); st.Absorbed == 0 || st.Rebuilds == 0 {
		t.Fatalf("expected absorbs and rebuilds: %+v", st)
	}
}

// TestSparseIncumbentAbsorbed: an improving observation past saturation
// must enter the model immediately (rank-1), not wait for a rebuild.
func TestSparseIncumbentAbsorbed(t *testing.T) {
	xs, ys := perfTrainingData(300, 3, 33)
	s := NewSparse(NewRBF(0.5), 1e-6, 32, 1)
	for i := range xs {
		if err := s.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	before := s.ActiveN()
	probe := []float64{0.5, 0.5, 0.5}
	deep := s.MinY() - 10
	if err := s.Observe(probe, deep); err != nil {
		t.Fatalf("incumbent observe: %v", err)
	}
	if s.MinY() != deep {
		t.Fatalf("MinY %v, want %v", s.MinY(), deep)
	}
	if s.ActiveN() != before+1 {
		t.Fatalf("incumbent not absorbed: active %d -> %d", before, s.ActiveN())
	}
	m, _, err := s.Predict(probe)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if math.Abs(m-deep) > 2 {
		t.Fatalf("model ignores absorbed incumbent: mean %v at value %v", m, deep)
	}
}

// TestSparseCloneIndependent pins the constant-liar contract: observing
// into a clone never perturbs the original.
func TestSparseCloneIndependent(t *testing.T) {
	xs, ys := perfTrainingData(200, 4, 17)
	s := NewSparse(NewRBF(0.4), 1e-6, 32, 3)
	for i := range xs {
		if err := s.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	probe := xs[7]
	m0, v0, _ := s.Predict(probe)
	c := s.Clone()
	for i := 0; i < 40; i++ {
		if err := c.Observe(xs[i], s.MinY()-1); err != nil {
			t.Fatalf("clone observe: %v", err)
		}
	}
	m1, v1, _ := s.Predict(probe)
	if m0 != m1 || v0 != v1 {
		t.Fatalf("clone observe leaked into original: (%v,%v) -> (%v,%v)", m0, v0, m1, v1)
	}
	if c.N() != s.N()+40 {
		t.Fatalf("clone history %d, want %d", c.N(), s.N()+40)
	}
}

// TestSparseTracksFunction sanity-checks approximation quality: with a
// quarter of the history as inducing points the subset-of-data posterior
// must still rank a low region below a high region of a smooth function.
func TestSparseTracksFunction(t *testing.T) {
	xs, _ := perfTrainingData(600, 2, 9)
	ys := make([]float64, len(xs))
	f := func(p []float64) float64 {
		return (p[0]-0.3)*(p[0]-0.3) + (p[1]-0.7)*(p[1]-0.7)
	}
	for i, p := range xs {
		ys[i] = f(p)
	}
	s := NewSparse(NewMatern(2.5, 0.3), 1e-6, 128, 77)
	for i := range xs {
		if err := s.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	lo, _, err := s.Predict([]float64{0.3, 0.7})
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	hi, _, err := s.Predict([]float64{0.95, 0.05})
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if lo >= hi {
		t.Fatalf("sparse posterior lost the landscape: f(min)=%v >= f(far)=%v", lo, hi)
	}
}

// BenchmarkSparseObserve measures the saturated O(m²) observe against the
// dense O(n²) path at deep history sizes.
func BenchmarkSparseObserve(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		xs, ys := perfTrainingData(n+b.N+1, 6, 4)
		b.Run("sparse-"+itoa(n), func(b *testing.B) {
			s := NewSparse(NewRBF(0.4), 1e-6, 256, 11)
			for i := 0; i < n; i++ {
				if err := s.Observe(xs[i], ys[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Observe(xs[n+i%(len(xs)-n)], ys[n+i%(len(xs)-n)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
