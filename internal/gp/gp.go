package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/linalg"
	"autotune/internal/numopt"
	"autotune/internal/stats"
)

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("gp: model not fitted")

// ErrNoData is returned by Fit with an empty training set.
var ErrNoData = errors.New("gp: empty training set")

// GP is an exact Gaussian-process regressor. Construct with New, then Fit
// with training data; Predict then returns posterior mean and variance.
// A GP is not safe for concurrent mutation; concurrent Predict after Fit
// is safe.
type GP struct {
	kernel Kernel
	// noise is the observation noise variance added to the kernel
	// diagonal (in normalized-target units).
	noise float64

	// Fitted state.
	x      [][]float64
	yNorm  []float64 // centered/scaled targets
	yMean  float64
	yScale float64
	chol   *linalg.Matrix
	alpha  []float64
	fitted bool
}

// New returns a GP with the given kernel and observation-noise variance.
// A noise of 0 is raised to a small floor for numerical stability.
func New(kernel Kernel, noise float64) *GP {
	if noise < 1e-10 {
		noise = 1e-10
	}
	return &GP{kernel: kernel, noise: noise}
}

// Kernel returns the model's kernel (live; mutating it invalidates the fit).
func (g *GP) Kernel() Kernel { return g.kernel }

// Noise returns the observation-noise variance.
func (g *GP) Noise() float64 { return g.noise }

// SetNoise updates the observation-noise variance; takes effect on next Fit.
func (g *GP) SetNoise(v float64) {
	if v < 1e-10 {
		v = 1e-10
	}
	g.noise = v
}

// Fit conditions the GP on inputs x and targets y. Targets are internally
// centered and scaled to unit variance; predictions are returned in the
// original units. x rows are copied by reference and must not be mutated.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("%w: %d inputs, %d targets", ErrNoData, len(x), len(y))
	}
	g.yMean = stats.Mean(y)
	g.yScale = stats.StdDev(y)
	if g.yScale == 0 || math.IsNaN(g.yScale) {
		g.yScale = 1
	}
	g.yNorm = make([]float64, len(y))
	for i, v := range y {
		g.yNorm[i] = (v - g.yMean) / g.yScale
	}
	g.x = x

	k := g.gram(x)
	l, _, err := linalg.CholeskyJitter(k, 1e-3)
	if err != nil {
		g.fitted = false
		return fmt.Errorf("gp: fit: %w", err)
	}
	alpha, err := linalg.CholeskySolve(l, g.yNorm)
	if err != nil {
		g.fitted = false
		return fmt.Errorf("gp: fit: %w", err)
	}
	g.chol = l
	g.alpha = alpha
	g.fitted = true
	return nil
}

func (g *GP) gram(x [][]float64) *linalg.Matrix {
	n := len(x)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel.Eval(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Add(i, i, g.noise)
	}
	return k
}

// Predict returns the posterior mean and variance at x. Variance is the
// latent-function variance (without observation noise), floored at zero.
func (g *GP) Predict(x []float64) (mean, variance float64, err error) {
	if !g.fitted {
		return 0, 0, ErrNotFitted
	}
	n := len(g.x)
	kstar := make([]float64, n)
	for i := 0; i < n; i++ {
		kstar[i] = g.kernel.Eval(g.x[i], x)
	}
	muNorm := linalg.Dot(kstar, g.alpha)
	v, err := linalg.SolveLower(g.chol, kstar)
	if err != nil {
		return 0, 0, fmt.Errorf("gp: predict: %w", err)
	}
	varNorm := g.kernel.Eval(x, x) - linalg.Dot(v, v)
	if varNorm < 0 {
		varNorm = 0
	}
	return muNorm*g.yScale + g.yMean, varNorm * g.yScale * g.yScale, nil
}

// SampleAt draws one sample of the posterior at a finite set of points,
// using rng. Used for Thompson-style acquisition.
func (g *GP) SampleAt(points [][]float64, rng *rand.Rand) ([]float64, error) {
	if !g.fitted {
		return nil, ErrNotFitted
	}
	m := len(points)
	mu := make([]float64, m)
	// Posterior covariance between the points.
	cov := linalg.NewMatrix(m, m)
	vs := make([][]float64, m)
	for i, p := range points {
		n := len(g.x)
		kstar := make([]float64, n)
		for j := 0; j < n; j++ {
			kstar[j] = g.kernel.Eval(g.x[j], p)
		}
		mu[i] = linalg.Dot(kstar, g.alpha)
		v, err := linalg.SolveLower(g.chol, kstar)
		if err != nil {
			return nil, err
		}
		vs[i] = v
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			c := g.kernel.Eval(points[i], points[j]) - linalg.Dot(vs[i], vs[j])
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
	}
	l, _, err := linalg.CholeskyJitter(cov, 1e-2)
	if err != nil {
		return nil, fmt.Errorf("gp: sample: %w", err)
	}
	z := make([]float64, m)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	sample := l.MulVec(z)
	out := make([]float64, m)
	for i := range out {
		out[i] = (mu[i]+sample[i])*g.yScale + g.yMean
	}
	return out, nil
}

// LogMarginalLikelihood returns the log marginal likelihood of the fitted
// data under the current hyperparameters (on normalized targets).
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if !g.fitted {
		return 0, ErrNotFitted
	}
	n := float64(len(g.x))
	dataFit := -0.5 * linalg.Dot(g.yNorm, g.alpha)
	complexity := -0.5 * linalg.LogDetFromChol(g.chol)
	norm := -0.5 * n * math.Log(2*math.Pi)
	return dataFit + complexity + norm, nil
}

// FitHyper fits the GP and then optimizes kernel hyperparameters (and the
// noise variance) by maximizing log marginal likelihood with restarts
// Nelder-Mead searches in log space: the current hyperparameters plus
// `restarts` random perturbations. The best parameters are installed and
// the GP refitted.
func (g *GP) FitHyper(x [][]float64, y []float64, restarts int, rng *rand.Rand) error {
	if err := g.Fit(x, y); err != nil {
		return err
	}
	base := append(g.kernel.Hyper(), math.Log(g.noise))
	obj := func(lp []float64) float64 {
		for _, v := range lp {
			if v < -12 || v > 8 { // keep hyperparameters in a sane range
				return math.Inf(1)
			}
		}
		k := g.kernel.Clone()
		k.SetHyper(lp[:len(lp)-1])
		trial := &GP{kernel: k, noise: math.Exp(lp[len(lp)-1])}
		if trial.noise < 1e-10 {
			trial.noise = 1e-10
		}
		if err := trial.Fit(x, y); err != nil {
			return math.Inf(1)
		}
		lml, err := trial.LogMarginalLikelihood()
		if err != nil || math.IsNaN(lml) {
			return math.Inf(1)
		}
		return -lml
	}
	bestLP := append([]float64(nil), base...)
	bestVal := obj(base)
	starts := [][]float64{base}
	for r := 0; r < restarts; r++ {
		s := make([]float64, len(base))
		for i := range s {
			s[i] = base[i] + rng.NormFloat64()*1.5
		}
		starts = append(starts, s)
	}
	for _, s := range starts {
		lp, val := numopt.NelderMead(obj, s, numopt.Options{MaxIter: 120, Scale: 0.3})
		if val < bestVal {
			bestVal, bestLP = val, lp
		}
	}
	if !math.IsInf(bestVal, 1) {
		g.kernel.SetHyper(bestLP[:len(bestLP)-1])
		g.noise = math.Exp(bestLP[len(bestLP)-1])
		if g.noise < 1e-10 {
			g.noise = 1e-10
		}
	}
	return g.Fit(x, y)
}

// N returns the number of training points (0 before Fit).
func (g *GP) N() int { return len(g.x) }
