package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/linalg"
	"autotune/internal/numopt"
	"autotune/internal/stats"
)

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("gp: model not fitted")

// ErrNoData is returned by Fit with an empty training set.
var ErrNoData = errors.New("gp: empty training set")

// GP is an exact Gaussian-process regressor. Construct with New, then Fit
// with training data; Predict then returns posterior mean and variance.
// Observe absorbs a single new observation incrementally in O(n²) via a
// rank-1 Cholesky row update, against Fit's O(n³) refactorization.
// A GP is not safe for concurrent mutation; concurrent Predict after Fit
// is safe.
type GP struct {
	kernel Kernel
	// noise is the observation noise variance added to the kernel
	// diagonal (in normalized-target units).
	noise float64

	// Fitted state.
	x      [][]float64
	yRaw   []float64 // targets in caller units, as handed to Fit/Observe
	yNorm  []float64 // centered/scaled targets
	yMean  float64
	yScale float64
	chol   *linalg.Matrix
	alpha  []float64
	fitted bool

	// Incremental-path caches. gram is K + noise·I for gramX under
	// hyperSig (kernel hyperparameters plus noise); it lets a growing
	// training set re-evaluate only the rows of configurations it has
	// never seen (Fit prefix reuse) and lets Observe append a single row.
	// jitter is the diagonal jitter the last factorization needed; the
	// bordered row's diagonal must include it to stay consistent with chol.
	gram     *linalg.Matrix
	gramX    [][]float64
	jitter   float64
	hyperSig []float64
}

// New returns a GP with the given kernel and observation-noise variance.
// A noise of 0 is raised to a small floor for numerical stability.
func New(kernel Kernel, noise float64) *GP {
	if noise < 1e-10 {
		noise = 1e-10
	}
	return &GP{kernel: kernel, noise: noise}
}

// Kernel returns the model's kernel (live; mutating it invalidates the fit).
func (g *GP) Kernel() Kernel { return g.kernel }

// Noise returns the observation-noise variance.
func (g *GP) Noise() float64 { return g.noise }

// SetNoise updates the observation-noise variance; takes effect on next Fit.
func (g *GP) SetNoise(v float64) {
	if v < 1e-10 {
		v = 1e-10
	}
	g.noise = v
}

// Fit conditions the GP on inputs x and targets y. Targets are internally
// centered and scaled to unit variance; predictions are returned in the
// original units. x rows are copied by reference and must not be mutated.
// When x extends the previous training set under unchanged hyperparameters,
// the cached gram matrix is reused and only the new configurations' kernel
// rows are evaluated.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("%w: %d inputs, %d targets", ErrNoData, len(x), len(y))
	}
	g.yMean = stats.Mean(y)
	g.yScale = stats.StdDev(y)
	if g.yScale == 0 || math.IsNaN(g.yScale) {
		g.yScale = 1
	}
	g.yNorm = make([]float64, len(y))
	for i, v := range y {
		g.yNorm[i] = (v - g.yMean) / g.yScale
	}
	g.yRaw = append([]float64(nil), y...)
	// Cap capacity so a later Observe append cannot scribble on the
	// caller's backing array.
	g.x = x[:len(x):len(x)]

	sig := append(g.kernel.Hyper(), g.noise)
	k := g.gramFor(x, sig)
	l, jit, err := linalg.CholeskyJitter(k, 1e-3)
	if err != nil {
		g.fitted = false
		return fmt.Errorf("gp: fit: %w", err)
	}
	alpha, err := linalg.CholeskySolve(l, g.yNorm)
	if err != nil {
		g.fitted = false
		return fmt.Errorf("gp: fit: %w", err)
	}
	g.gram, g.gramX, g.jitter, g.hyperSig = k, g.x, jit, sig
	g.chol = l
	g.alpha = alpha
	g.fitted = true
	return nil
}

// gramFor builds K + noise·I for x. If the cached gram was built under the
// same hyperparameter signature and its points are a prefix of x, the
// cached block is copied and only rows for new configurations are
// evaluated — the per-config kernel-row reuse that makes refitting a grown
// history O(m·n·d) in the m new points instead of O(n²·d).
func (g *GP) gramFor(x [][]float64, sig []float64) *linalg.Matrix {
	n := len(x)
	reuse := 0
	if g.gram != nil && sameVec(g.hyperSig, sig) && g.gram.Rows <= n {
		reuse = g.gram.Rows
		for i := 0; i < reuse; i++ {
			if !sameVec(g.gramX[i], x[i]) {
				reuse = 0
				break
			}
		}
	}
	k := linalg.NewMatrix(n, n)
	for i := 0; i < reuse; i++ {
		copy(k.Row(i)[:reuse], g.gram.Row(i))
	}
	for i := reuse; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel.Eval(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Add(i, i, g.noise)
	}
	return k
}

// sameVec reports exact element equality; encodings are deterministic, so
// re-encoded configurations hit this bitwise.
func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Observe conditions the fitted GP on one additional observation
// incrementally: the cached gram matrix gains one kernel row (n kernel
// evaluations) and the Cholesky factor is extended with a rank-1 row
// update, so the whole absorption costs O(n²) instead of Fit's O(n³)
// refactorization. Target normalization and alpha are recomputed exactly
// as Fit would, so after any number of Observes the model matches a full
// Fit on the same data up to floating-point roundoff. If the model is not
// fitted, hyperparameters changed since the last fit, or the bordered
// matrix is not numerically SPD, it falls back to a full Fit transparently.
func (g *GP) Observe(x []float64, y float64) error {
	if !g.fitted || g.gram == nil ||
		!sameVec(g.hyperSig, append(g.kernel.Hyper(), g.noise)) {
		return g.Fit(append(g.x, x), append(g.yRaw, y))
	}
	n := len(g.x)
	krow := make([]float64, n)
	for i, xi := range g.x {
		krow[i] = g.kernel.Eval(xi, x)
	}
	knn := g.kernel.Eval(x, x) + g.noise
	l, err := linalg.CholUpdateRow(g.chol, krow, knn+g.jitter)
	if err != nil {
		// The bordered system lost positive definiteness under the cached
		// jitter (near-duplicate point, drifting conditioning): refit from
		// scratch, letting CholeskyJitter pick a fresh jitter.
		return g.Fit(append(g.x, x), append(g.yRaw, y))
	}
	grown := linalg.NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(grown.Row(i)[:n], g.gram.Row(i))
		grown.Row(i)[n] = krow[i]
	}
	copy(grown.Row(n)[:n], krow)
	grown.Row(n)[n] = knn
	g.gram = grown
	g.chol = l
	g.x = append(g.x, x)
	g.gramX = g.x
	g.yRaw = append(g.yRaw, y)
	// Renormalize and recompute alpha — O(n²), the same arithmetic Fit
	// performs, keeping incremental and full paths numerically aligned.
	g.yMean = stats.Mean(g.yRaw)
	g.yScale = stats.StdDev(g.yRaw)
	if g.yScale == 0 || math.IsNaN(g.yScale) {
		g.yScale = 1
	}
	g.yNorm = make([]float64, len(g.yRaw))
	for i, v := range g.yRaw {
		g.yNorm[i] = (v - g.yMean) / g.yScale
	}
	alpha, err := linalg.CholeskySolve(g.chol, g.yNorm)
	if err != nil {
		// The grown factor is singular after all: rebuild everything.
		return g.Fit(g.x, g.yRaw)
	}
	g.alpha = alpha
	return nil
}

// Clone returns an independent deep copy of the model — kernel, caches,
// and fitted state — so callers can fantasize observations (constant-liar
// batching) with Observe without touching the original. Training input
// rows are shared read-only.
func (g *GP) Clone() *GP {
	c := &GP{
		kernel: g.kernel.Clone(),
		noise:  g.noise,
		yMean:  g.yMean,
		yScale: g.yScale,
		jitter: g.jitter,
		fitted: g.fitted,
	}
	c.x = append([][]float64(nil), g.x...)
	c.gramX = append([][]float64(nil), g.gramX...)
	c.yRaw = append([]float64(nil), g.yRaw...)
	c.yNorm = append([]float64(nil), g.yNorm...)
	c.alpha = append([]float64(nil), g.alpha...)
	c.hyperSig = append([]float64(nil), g.hyperSig...)
	if g.chol != nil {
		c.chol = g.chol.Clone()
	}
	if g.gram != nil {
		c.gram = g.gram.Clone()
	}
	return c
}

// MinY returns the smallest raw (caller-unit) target the model is
// conditioned on, or 0 before a successful Fit. For a minimizing surrogate
// this is the incumbent in model units.
func (g *GP) MinY() float64 {
	if len(g.yRaw) == 0 {
		return 0
	}
	m := g.yRaw[0]
	for _, v := range g.yRaw[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Predict returns the posterior mean and variance at x. Variance is the
// latent-function variance (without observation noise), floored at zero.
func (g *GP) Predict(x []float64) (mean, variance float64, err error) {
	if !g.fitted {
		return 0, 0, ErrNotFitted
	}
	n := len(g.x)
	kstar := make([]float64, n)
	for i := 0; i < n; i++ {
		kstar[i] = g.kernel.Eval(g.x[i], x)
	}
	muNorm := linalg.Dot(kstar, g.alpha)
	v, err := linalg.SolveLower(g.chol, kstar)
	if err != nil {
		return 0, 0, fmt.Errorf("gp: predict: %w", err)
	}
	varNorm := g.kernel.Eval(x, x) - linalg.Dot(v, v)
	if varNorm < 0 {
		varNorm = 0
	}
	return muNorm*g.yScale + g.yMean, varNorm * g.yScale * g.yScale, nil
}

// SampleAt draws one sample of the posterior at a finite set of points,
// using rng. Used for Thompson-style acquisition.
func (g *GP) SampleAt(points [][]float64, rng *rand.Rand) ([]float64, error) {
	if !g.fitted {
		return nil, ErrNotFitted
	}
	m := len(points)
	mu := make([]float64, m)
	// Posterior covariance between the points.
	cov := linalg.NewMatrix(m, m)
	vs := make([][]float64, m)
	for i, p := range points {
		n := len(g.x)
		kstar := make([]float64, n)
		for j := 0; j < n; j++ {
			kstar[j] = g.kernel.Eval(g.x[j], p)
		}
		mu[i] = linalg.Dot(kstar, g.alpha)
		v, err := linalg.SolveLower(g.chol, kstar)
		if err != nil {
			return nil, err
		}
		vs[i] = v
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			c := g.kernel.Eval(points[i], points[j]) - linalg.Dot(vs[i], vs[j])
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
	}
	l, _, err := linalg.CholeskyJitter(cov, 1e-2)
	if err != nil {
		return nil, fmt.Errorf("gp: sample: %w", err)
	}
	z := make([]float64, m)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	sample := l.MulVec(z)
	out := make([]float64, m)
	for i := range out {
		out[i] = (mu[i]+sample[i])*g.yScale + g.yMean
	}
	return out, nil
}

// LogMarginalLikelihood returns the log marginal likelihood of the fitted
// data under the current hyperparameters (on normalized targets).
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if !g.fitted {
		return 0, ErrNotFitted
	}
	n := float64(len(g.x))
	dataFit := -0.5 * linalg.Dot(g.yNorm, g.alpha)
	complexity := -0.5 * linalg.LogDetFromChol(g.chol)
	norm := -0.5 * n * math.Log(2*math.Pi)
	return dataFit + complexity + norm, nil
}

// FitHyper fits the GP and then optimizes kernel hyperparameters (and the
// noise variance) by maximizing log marginal likelihood with restarts
// Nelder-Mead searches in log space: the current hyperparameters plus
// `restarts` random perturbations. The best parameters are installed and
// the GP refitted.
func (g *GP) FitHyper(x [][]float64, y []float64, restarts int, rng *rand.Rand) error {
	if err := g.Fit(x, y); err != nil {
		return err
	}
	base := append(g.kernel.Hyper(), math.Log(g.noise))
	obj := func(lp []float64) float64 {
		for _, v := range lp {
			if v < -12 || v > 8 { // keep hyperparameters in a sane range
				return math.Inf(1)
			}
		}
		k := g.kernel.Clone()
		k.SetHyper(lp[:len(lp)-1])
		trial := &GP{kernel: k, noise: math.Exp(lp[len(lp)-1])}
		if trial.noise < 1e-10 {
			trial.noise = 1e-10
		}
		if err := trial.Fit(x, y); err != nil {
			return math.Inf(1)
		}
		lml, err := trial.LogMarginalLikelihood()
		if err != nil || math.IsNaN(lml) {
			return math.Inf(1)
		}
		return -lml
	}
	bestLP := append([]float64(nil), base...)
	bestVal := obj(base)
	starts := [][]float64{base}
	for r := 0; r < restarts; r++ {
		s := make([]float64, len(base))
		for i := range s {
			s[i] = base[i] + rng.NormFloat64()*1.5
		}
		starts = append(starts, s)
	}
	for _, s := range starts {
		lp, val := numopt.NelderMead(obj, s, numopt.Options{MaxIter: 120, Scale: 0.3})
		if val < bestVal {
			bestVal, bestLP = val, lp
		}
	}
	if !math.IsInf(bestVal, 1) {
		g.kernel.SetHyper(bestLP[:len(bestLP)-1])
		g.noise = math.Exp(bestLP[len(bestLP)-1])
		if g.noise < 1e-10 {
			g.noise = 1e-10
		}
	}
	return g.Fit(x, y)
}

// N returns the number of training points (0 before Fit).
func (g *GP) N() int { return len(g.x) }
