package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"autotune/internal/linalg"
	"autotune/internal/numopt"
	"autotune/internal/stats"
)

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("gp: model not fitted")

// ErrNoData is returned by Fit with an empty training set.
var ErrNoData = errors.New("gp: empty training set")

// GP is an exact Gaussian-process regressor. Construct with New, then Fit
// with training data; Predict then returns posterior mean and variance.
// Observe absorbs a single new observation incrementally in O(n²) via a
// rank-1 Cholesky row update, against Fit's O(n³) refactorization.
// A GP is not safe for concurrent mutation; concurrent Predict after Fit
// is safe (prediction scratch comes from a pool, never the model).
type GP struct {
	kernel Kernel
	// noise is the observation noise variance added to the kernel
	// diagonal (in normalized-target units).
	noise float64

	// workers bounds goroutines for row-parallel gram construction and
	// PredictN (0 = GOMAXPROCS). legacy routes everything through the
	// PR-4-era allocating paths — the baseline arm of the sessions
	// throughput benchmark.
	workers int
	legacy  bool

	// Fitted state.
	x      [][]float64
	yRaw   []float64 // targets in caller units, as handed to Fit/Observe
	yNorm  []float64 // centered/scaled targets
	yMean  float64
	yScale float64
	chol   *linalg.Matrix
	alpha  []float64
	fitted bool

	// Incremental-path caches. gram is K + noise·I for gramX under
	// hyperSig (kernel hyperparameters plus noise); it lets a growing
	// training set re-evaluate only the rows of configurations it has
	// never seen (Fit prefix reuse) and lets Observe append a single row.
	// jitter is the diagonal jitter the last factorization needed; the
	// bordered row's diagonal must include it to stay consistent with chol.
	gram     *linalg.Matrix
	gramX    [][]float64
	jitter   float64
	hyperSig []float64

	// d2 caches squared pairwise distances for d2X. Distances depend only
	// on the points, not the hyperparameters, so stationary kernels (see
	// stationaryFunc) can re-derive the gram for every hyperparameter
	// candidate FitHyper tries without touching the inputs again.
	d2  *linalg.Matrix
	d2X [][]float64

	// Reusable scratch for Fit/Observe (safe: mutation is single-threaded
	// by contract; Predict never touches these).
	krow         []float64
	d2row        []float64
	solveScratch []float64
}

// New returns a GP with the given kernel and observation-noise variance.
// A noise of 0 is raised to a small floor for numerical stability.
func New(kernel Kernel, noise float64) *GP {
	if noise < 1e-10 {
		noise = 1e-10
	}
	return &GP{kernel: kernel, noise: noise}
}

// Kernel returns the model's kernel (live; mutating it invalidates the fit).
func (g *GP) Kernel() Kernel { return g.kernel }

// Noise returns the observation-noise variance.
func (g *GP) Noise() float64 { return g.noise }

// SetNoise updates the observation-noise variance; takes effect on next Fit.
func (g *GP) SetNoise(v float64) {
	if v < 1e-10 {
		v = 1e-10
	}
	g.noise = v
}

// SetWorkers bounds the goroutines used for row-parallel gram construction
// and batched prediction. 0 (the default) resolves to runtime.GOMAXPROCS(0);
// 1 disables parallelism. Every matrix element and output index is written
// by exactly one worker, so results are bitwise identical for any setting.
func (g *GP) SetWorkers(n int) { g.workers = n }

// SetLegacyAlloc routes Fit, Observe, Predict, and FitHyper through the
// PR-4-era allocating implementations: fresh matrices and vectors per call,
// no squared-distance cache, serial gram construction. It exists as the
// baseline arm of the sessions throughput benchmark and for differential
// tests of the workspace paths; results are numerically identical.
func (g *GP) SetLegacyAlloc(on bool) { g.legacy = on }

func (g *GP) effWorkers() int {
	if g.legacy {
		return 1
	}
	if g.workers > 0 {
		return g.workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelRows invokes fill(i) for every i in [lo, hi), spreading rows
// across a bounded worker pool in strided order. Each call owns row i
// exclusively — including its mirror writes into column i — so every
// element has exactly one writer and the result is bitwise identical for
// any worker count. Worker panics are captured per worker and re-raised in
// the caller (lowest worker index first), preserving serial panic semantics.
func (g *GP) parallelRows(lo, hi int, fill func(i int)) {
	w := g.effWorkers()
	if w > hi-lo {
		w = hi - lo
	}
	if w <= 1 || hi-lo < 8 {
		for i := lo; i < hi; i++ {
			fill(i)
		}
		return
	}
	panics := make([]any, w)
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer func() {
				if r := recover(); r != nil {
					panics[wk] = r
				}
				wg.Done()
			}()
			for i := lo + wk; i < hi; i += w {
				fill(i)
			}
		}(wk)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// growFloats resizes *buf to length n, reallocating with headroom only when
// capacity is exhausted. Contents are unspecified.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n, n+n/2+8)
	}
	*buf = (*buf)[:n]
	return *buf
}

// reshapeSquare returns an n×n matrix backed by m's storage when it has
// capacity, else a fresh one. Contents are unspecified.
func reshapeSquare(m *linalg.Matrix, n int) *linalg.Matrix {
	if m == nil || cap(m.Data) < n*n {
		return linalg.NewMatrix(n, n)
	}
	m.Rows, m.Cols = n, n
	m.Data = m.Data[:n*n]
	return m
}

// Fit conditions the GP on inputs x and targets y. Targets are internally
// centered and scaled to unit variance; predictions are returned in the
// original units. x rows are copied by reference and must not be mutated.
// When x extends the previous training set under unchanged hyperparameters,
// the cached gram matrix is reused and only the new configurations' kernel
// rows are evaluated. Target, factor, and gram storage are reused across
// calls, so refitting a model in a loop (FitHyper's objective) allocates
// only on growth.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if g.legacy {
		return g.fitLegacy(x, y)
	}
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("%w: %d inputs, %d targets", ErrNoData, len(x), len(y))
	}
	n := len(y)
	g.yMean = stats.Mean(y)
	g.yScale = stats.StdDev(y)
	if g.yScale == 0 || math.IsNaN(g.yScale) {
		g.yScale = 1
	}
	yNorm := growFloats(&g.yNorm, n)
	for i, v := range y {
		yNorm[i] = (v - g.yMean) / g.yScale
	}
	// Copy y into reused storage. When y aliases g.yRaw (Observe's
	// fallback appends to it in place) both slices share a backing start,
	// making the copy a no-op rather than a corruption.
	yRaw := growFloats(&g.yRaw, n)
	copy(yRaw, y)
	// Cap capacity so a later Observe append cannot scribble on the
	// caller's backing array.
	g.x = x[:len(x):len(x)]

	sig := append(g.kernel.Hyper(), g.noise)
	k := g.gramFor(x, sig)
	g.chol = reshapeSquare(g.chol, n)
	jit, err := linalg.CholeskyJitterInto(k, g.chol, 1e-3)
	if err != nil {
		g.fitted = false
		return fmt.Errorf("gp: fit: %w", err)
	}
	alpha := growFloats(&g.alpha, n)
	if err := linalg.CholeskySolveInto(g.chol, yNorm, alpha); err != nil {
		g.fitted = false
		return fmt.Errorf("gp: fit: %w", err)
	}
	g.gram, g.gramX, g.jitter, g.hyperSig = k, g.x, jit, sig
	g.fitted = true
	return nil
}

// fitLegacy is the PR-4 Fit: fresh target, gram, factor, and alpha
// allocations on every call. Kept verbatim as the benchmark baseline.
func (g *GP) fitLegacy(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("%w: %d inputs, %d targets", ErrNoData, len(x), len(y))
	}
	g.yMean = stats.Mean(y)
	g.yScale = stats.StdDev(y)
	if g.yScale == 0 || math.IsNaN(g.yScale) {
		g.yScale = 1
	}
	g.yNorm = make([]float64, len(y))
	for i, v := range y {
		g.yNorm[i] = (v - g.yMean) / g.yScale
	}
	g.yRaw = append([]float64(nil), y...)
	g.x = x[:len(x):len(x)]

	sig := append(g.kernel.Hyper(), g.noise)
	k := g.gramForLegacy(x, sig)
	l, jit, err := linalg.CholeskyJitter(k, 1e-3)
	if err != nil {
		g.fitted = false
		return fmt.Errorf("gp: fit: %w", err)
	}
	alpha, err := linalg.CholeskySolve(l, g.yNorm)
	if err != nil {
		g.fitted = false
		return fmt.Errorf("gp: fit: %w", err)
	}
	g.gram, g.gramX, g.jitter, g.hyperSig = k, g.x, jit, sig
	g.chol = l
	g.alpha = alpha
	g.fitted = true
	return nil
}

// gramFor builds K + noise·I for x. Three reuse tiers keep the hot loops
// cheap: (1) same points and hyperparameters — the cached matrix is
// returned as is; (2) changed hyperparameters over the same-size training
// set — the cached storage is refilled in place (FitHyper's per-candidate
// path); (3) a grown point set under unchanged hyperparameters — the cached
// block is copied and only new rows are evaluated. Stationary kernels read
// squared distances from the d² cache instead of re-touching the inputs,
// and row filling is spread across the worker pool (see parallelRows for
// why that stays bitwise-deterministic).
func (g *GP) gramFor(x [][]float64, sig []float64) *linalg.Matrix {
	n := len(x)
	reuse := 0
	if g.gram != nil && sameVec(g.hyperSig, sig) && g.gram.Rows <= n {
		reuse = g.gram.Rows
		for i := 0; i < reuse; i++ {
			if !sameRow(g.gramX[i], x[i]) {
				reuse = 0
				break
			}
		}
	}
	if reuse == n && g.gram.Rows == n {
		return g.gram
	}
	var k *linalg.Matrix
	if reuse > 0 {
		k = linalg.NewMatrix(n, n)
		for i := 0; i < reuse; i++ {
			copy(k.Row(i)[:reuse], g.gram.Row(i))
		}
	} else {
		// Overwriting the cached storage invalidates it until the caller
		// re-registers it on success; clear the signature so a failed
		// factorization cannot leave a stale cache behind.
		k = reshapeSquare(g.gram, n)
		g.gram, g.gramX, g.hyperSig = nil, nil, nil
	}
	f, stationary := stationaryFunc(g.kernel)
	if stationary {
		d2 := g.d2For(x)
		g.parallelRows(reuse, n, func(i int) {
			row := k.Row(i)
			d2row := d2.Row(i)
			for j := 0; j <= i; j++ {
				v := f(d2row[j])
				row[j] = v
				k.Set(j, i, v)
			}
			row[i] += g.noise
		})
	} else {
		g.parallelRows(reuse, n, func(i int) {
			row := k.Row(i)
			for j := 0; j <= i; j++ {
				v := g.kernel.Eval(x[i], x[j])
				row[j] = v
				k.Set(j, i, v)
			}
			row[i] += g.noise
		})
	}
	return k
}

// gramForLegacy is the PR-4 gram builder: a fresh matrix per call, serial
// row evaluation, prefix reuse only.
func (g *GP) gramForLegacy(x [][]float64, sig []float64) *linalg.Matrix {
	n := len(x)
	reuse := 0
	if g.gram != nil && sameVec(g.hyperSig, sig) && g.gram.Rows <= n {
		reuse = g.gram.Rows
		for i := 0; i < reuse; i++ {
			if !sameVec(g.gramX[i], x[i]) {
				reuse = 0
				break
			}
		}
	}
	k := linalg.NewMatrix(n, n)
	for i := 0; i < reuse; i++ {
		copy(k.Row(i)[:reuse], g.gram.Row(i))
	}
	for i := reuse; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel.Eval(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Add(i, i, g.noise)
	}
	return k
}

// d2For returns the squared-distance matrix for x, maintained with the same
// prefix-reuse discipline as the gram cache but keyed on points alone —
// hyperparameter changes never invalidate it, which is what makes FitHyper's
// per-candidate gram rebuilds O(n²) kernel evaluations with no distance work.
func (g *GP) d2For(x [][]float64) *linalg.Matrix {
	n := len(x)
	reuse := 0
	if g.d2 != nil && g.d2.Rows <= n {
		reuse = g.d2.Rows
		for i := 0; i < reuse; i++ {
			if !sameRow(g.d2X[i], x[i]) {
				reuse = 0
				break
			}
		}
	}
	if reuse == n && g.d2.Rows == n {
		return g.d2
	}
	var d2 *linalg.Matrix
	if reuse > 0 {
		d2 = linalg.NewMatrix(n, n)
		for i := 0; i < reuse; i++ {
			copy(d2.Row(i)[:reuse], g.d2.Row(i))
		}
	} else {
		d2 = reshapeSquare(g.d2, n)
	}
	g.parallelRows(reuse, n, func(i int) {
		row := d2.Row(i)
		for j := 0; j <= i; j++ {
			v := sqDist(x[i], x[j])
			row[j] = v
			d2.Set(j, i, v)
		}
	})
	g.d2, g.d2X = d2, x
	return d2
}

// sameVec reports exact element equality; encodings are deterministic, so
// re-encoded configurations hit this bitwise.
func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameRow is sameVec with a pointer-identity fast path: cached training
// rows are usually the very same slices, so prefix checks cost O(1) per row
// instead of O(d).
func sameRow(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	return sameVec(a, b)
}

// rowsMatch reports whether two point sets are the same rows (sameRow-wise).
func rowsMatch(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameRow(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Observe conditions the fitted GP on one additional observation
// incrementally: the cached gram matrix gains one kernel row (n kernel
// evaluations) and the Cholesky factor is extended with a rank-1 row
// update, so the whole absorption costs O(n²) instead of Fit's O(n³)
// refactorization. Target normalization and alpha are recomputed exactly
// as Fit would, so after any number of Observes the model matches a full
// Fit on the same data up to floating-point roundoff. If the model is not
// fitted, hyperparameters changed since the last fit, or the bordered
// matrix is not numerically SPD, it falls back to a full Fit transparently.
// The gram, factor, and d² matrices grow in place, so an Observe at history
// n costs amortized O(1) allocations.
func (g *GP) Observe(x []float64, y float64) error {
	if g.legacy {
		return g.observeLegacy(x, y)
	}
	if !g.fitted || g.gram == nil ||
		!sameVec(g.hyperSig, append(g.kernel.Hyper(), g.noise)) {
		return g.Fit(append(g.x, x), append(g.yRaw, y))
	}
	n := len(g.x)
	krow := growFloats(&g.krow, n)
	f, stationary := stationaryFunc(g.kernel)
	var d2row []float64
	if stationary {
		d2row = growFloats(&g.d2row, n)
		for i, xi := range g.x {
			d := sqDist(xi, x)
			d2row[i] = d
			krow[i] = f(d)
		}
	} else {
		for i, xi := range g.x {
			krow[i] = g.kernel.Eval(xi, x)
		}
	}
	knn := g.kernel.Eval(x, x) + g.noise
	scratch := growFloats(&g.solveScratch, n)
	if err := linalg.CholUpdateRowInPlace(g.chol, krow, knn+g.jitter, scratch); err != nil {
		// The bordered system lost positive definiteness under the cached
		// jitter (near-duplicate point, drifting conditioning): refit from
		// scratch, letting the jittered factorization pick a fresh jitter.
		return g.Fit(append(g.x, x), append(g.yRaw, y))
	}
	g.gram.GrowSquare()
	for i := 0; i < n; i++ {
		g.gram.Row(i)[n] = krow[i]
	}
	last := g.gram.Row(n)
	copy(last[:n], krow)
	last[n] = knn
	// Extend the d² cache only when it exactly covers the previous
	// training set; otherwise leave it to rebuild lazily.
	d2Extended := false
	if stationary && g.d2 != nil && g.d2.Rows == n && rowsMatch(g.d2X, g.x) {
		g.d2.GrowSquare()
		for i := 0; i < n; i++ {
			g.d2.Row(i)[n] = d2row[i]
		}
		dlast := g.d2.Row(n)
		copy(dlast[:n], d2row)
		dlast[n] = 0
		d2Extended = true
	}
	g.x = append(g.x, x)
	g.gramX = g.x
	if d2Extended {
		g.d2X = g.x
	}
	g.yRaw = append(g.yRaw, y)
	// Renormalize and recompute alpha — O(n²), the same arithmetic Fit
	// performs, keeping incremental and full paths numerically aligned.
	g.yMean = stats.Mean(g.yRaw)
	g.yScale = stats.StdDev(g.yRaw)
	if g.yScale == 0 || math.IsNaN(g.yScale) {
		g.yScale = 1
	}
	yNorm := growFloats(&g.yNorm, n+1)
	for i, v := range g.yRaw {
		yNorm[i] = (v - g.yMean) / g.yScale
	}
	alpha := growFloats(&g.alpha, n+1)
	if err := linalg.CholeskySolveInto(g.chol, yNorm, alpha); err != nil {
		// The grown factor is singular after all: rebuild everything.
		return g.Fit(g.x, g.yRaw)
	}
	return nil
}

// observeLegacy is the PR-4 Observe: fresh krow, grown gram matrix, and
// bordered factor allocated on every call.
func (g *GP) observeLegacy(x []float64, y float64) error {
	if !g.fitted || g.gram == nil ||
		!sameVec(g.hyperSig, append(g.kernel.Hyper(), g.noise)) {
		return g.Fit(append(g.x, x), append(g.yRaw, y))
	}
	n := len(g.x)
	krow := make([]float64, n)
	for i, xi := range g.x {
		krow[i] = g.kernel.Eval(xi, x)
	}
	knn := g.kernel.Eval(x, x) + g.noise
	l, err := linalg.CholUpdateRow(g.chol, krow, knn+g.jitter)
	if err != nil {
		return g.Fit(append(g.x, x), append(g.yRaw, y))
	}
	grown := linalg.NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(grown.Row(i)[:n], g.gram.Row(i))
		grown.Row(i)[n] = krow[i]
	}
	copy(grown.Row(n)[:n], krow)
	grown.Row(n)[n] = knn
	g.gram = grown
	g.chol = l
	g.x = append(g.x, x)
	g.gramX = g.x
	g.yRaw = append(g.yRaw, y)
	g.yMean = stats.Mean(g.yRaw)
	g.yScale = stats.StdDev(g.yRaw)
	if g.yScale == 0 || math.IsNaN(g.yScale) {
		g.yScale = 1
	}
	g.yNorm = make([]float64, len(g.yRaw))
	for i, v := range g.yRaw {
		g.yNorm[i] = (v - g.yMean) / g.yScale
	}
	alpha, err := linalg.CholeskySolve(g.chol, g.yNorm)
	if err != nil {
		return g.Fit(g.x, g.yRaw)
	}
	g.alpha = alpha
	return nil
}

// Clone returns an independent deep copy of the model — kernel, caches,
// and fitted state — so callers can fantasize observations (constant-liar
// batching) with Observe without touching the original. Training input
// rows are shared read-only; the d² cache and scratch buffers are not
// cloned (they rebuild lazily).
func (g *GP) Clone() *GP {
	c := &GP{
		kernel:  g.kernel.Clone(),
		noise:   g.noise,
		workers: g.workers,
		legacy:  g.legacy,
		yMean:   g.yMean,
		yScale:  g.yScale,
		jitter:  g.jitter,
		fitted:  g.fitted,
	}
	c.x = append([][]float64(nil), g.x...)
	c.gramX = append([][]float64(nil), g.gramX...)
	c.yRaw = append([]float64(nil), g.yRaw...)
	c.yNorm = append([]float64(nil), g.yNorm...)
	c.alpha = append([]float64(nil), g.alpha...)
	c.hyperSig = append([]float64(nil), g.hyperSig...)
	if g.chol != nil {
		c.chol = g.chol.Clone()
	}
	if g.gram != nil {
		c.gram = g.gram.Clone()
	}
	return c
}

// MinY returns the smallest raw (caller-unit) target the model is
// conditioned on, or 0 before a successful Fit. For a minimizing surrogate
// this is the incumbent in model units.
func (g *GP) MinY() float64 {
	if len(g.yRaw) == 0 {
		return 0
	}
	m := g.yRaw[0]
	for _, v := range g.yRaw[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Predict returns the posterior mean and variance at x. Variance is the
// latent-function variance (without observation noise), floored at zero.
// Scratch comes from a pooled workspace, so a warm Predict performs zero
// heap allocations; see PredictWS to manage the workspace explicitly.
func (g *GP) Predict(x []float64) (mean, variance float64, err error) {
	if g.legacy {
		return g.predictLegacy(x)
	}
	// Deferred so a panicking kernel (dimension mismatch) cannot leak the
	// workspace; an open-coded defer costs zero allocations.
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	return g.PredictWS(ws, x)
}

// predictLegacy is the PR-4 Predict: kstar and the triangular-solve result
// are allocated on every call.
func (g *GP) predictLegacy(x []float64) (mean, variance float64, err error) {
	if !g.fitted {
		return 0, 0, ErrNotFitted
	}
	n := len(g.x)
	kstar := make([]float64, n)
	for i := 0; i < n; i++ {
		kstar[i] = g.kernel.Eval(g.x[i], x)
	}
	muNorm := linalg.Dot(kstar, g.alpha)
	v, err := linalg.SolveLower(g.chol, kstar)
	if err != nil {
		return 0, 0, fmt.Errorf("gp: predict: %w", err)
	}
	varNorm := g.kernel.Eval(x, x) - linalg.Dot(v, v)
	if varNorm < 0 {
		varNorm = 0
	}
	return muNorm*g.yScale + g.yMean, varNorm * g.yScale * g.yScale, nil
}

// PredictWS is Predict with a caller-owned workspace, for hot loops that
// want to keep scratch out of the pool entirely. Safe to call concurrently
// after Fit as long as each goroutine uses its own workspace.
//
//autolint:hotpath
func (g *GP) PredictWS(ws *Workspace, x []float64) (mean, variance float64, err error) {
	if !g.fitted {
		return 0, 0, ErrNotFitted
	}
	n := len(g.x)
	ws.ensure(n)
	kstar := ws.kstar[:n]
	for i := 0; i < n; i++ {
		kstar[i] = g.kernel.Eval(g.x[i], x)
	}
	muNorm := linalg.Dot(kstar, g.alpha)
	v := ws.v[:n]
	if err := linalg.SolveLowerInto(g.chol, kstar, v); err != nil {
		return 0, 0, fmt.Errorf("gp: predict: %w", err)
	}
	varNorm := g.kernel.Eval(x, x) - linalg.Dot(v, v)
	if varNorm < 0 {
		varNorm = 0
	}
	return muNorm*g.yScale + g.yMean, varNorm * g.yScale * g.yScale, nil
}

// PredictN computes posterior means and variances for a batch of query
// points, writing into mean and variance (each at least len(xs) long).
// Points are spread across the worker pool; every output index is written
// by exactly one worker, so results are bitwise identical to calling
// Predict per point, for any worker count. On error the lowest-index
// failure is returned.
func (g *GP) PredictN(xs [][]float64, mean, variance []float64) error {
	if len(mean) < len(xs) || len(variance) < len(xs) {
		return fmt.Errorf("gp: predictn: %d points but %d/%d outputs", len(xs), len(mean), len(variance))
	}
	if !g.fitted {
		return ErrNotFitted
	}
	w := g.effWorkers()
	if w > len(xs) {
		w = len(xs)
	}
	if w <= 1 || len(xs) < 8 {
		ws := wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
		for i, x := range xs {
			m, v, err := g.PredictWS(ws, x)
			if err != nil {
				return err
			}
			mean[i], variance[i] = m, v
		}
		return nil
	}
	type wkErr struct {
		idx int
		err error
	}
	errs := make([]wkErr, w)
	panics := make([]any, w)
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer func() {
				if r := recover(); r != nil {
					panics[wk] = r
				}
				wg.Done()
			}()
			// Deferred Put: the worker's recover above re-raises panics on
			// the caller, and the workspace must return to the pool on that
			// unwind too.
			ws := wsPool.Get().(*Workspace)
			defer wsPool.Put(ws)
			errs[wk] = wkErr{idx: -1}
			// Strided indices ascend, so a worker's first failure is its
			// lowest; the reduction below picks the global lowest.
			for i := wk; i < len(xs); i += w {
				m, v, err := g.PredictWS(ws, xs[i])
				if err != nil {
					errs[wk] = wkErr{idx: i, err: err}
					break
				}
				mean[i], variance[i] = m, v
			}
		}(wk)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	var first *wkErr
	for wk := range errs {
		e := &errs[wk]
		if e.err != nil && (first == nil || e.idx < first.idx) {
			first = e
		}
	}
	if first != nil {
		return first.err
	}
	return nil
}

// SampleAt draws one sample of the posterior at a finite set of points,
// using rng. Used for Thompson-style acquisition. The per-point solves run
// through a pooled workspace and one flat matrix instead of a slice
// allocation per point.
func (g *GP) SampleAt(points [][]float64, rng *rand.Rand) ([]float64, error) {
	if !g.fitted {
		return nil, ErrNotFitted
	}
	m := len(points)
	n := len(g.x)
	mu := make([]float64, m)
	// Posterior covariance between the points.
	cov := linalg.NewMatrix(m, m)
	vs := linalg.NewMatrix(m, n)
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	ws.ensure(n)
	for i, p := range points {
		kstar := ws.kstar[:n]
		for j := 0; j < n; j++ {
			kstar[j] = g.kernel.Eval(g.x[j], p)
		}
		mu[i] = linalg.Dot(kstar, g.alpha)
		if err := linalg.SolveLowerInto(g.chol, kstar, vs.Row(i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			c := g.kernel.Eval(points[i], points[j]) - linalg.Dot(vs.Row(i), vs.Row(j))
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
	}
	l, _, err := linalg.CholeskyJitter(cov, 1e-2)
	if err != nil {
		return nil, fmt.Errorf("gp: sample: %w", err)
	}
	z := make([]float64, m)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	sample := l.MulVec(z)
	out := make([]float64, m)
	for i := range out {
		out[i] = (mu[i]+sample[i])*g.yScale + g.yMean
	}
	return out, nil
}

// LogMarginalLikelihood returns the log marginal likelihood of the fitted
// data under the current hyperparameters (on normalized targets).
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if !g.fitted {
		return 0, ErrNotFitted
	}
	n := float64(len(g.x))
	dataFit := -0.5 * linalg.Dot(g.yNorm, g.alpha)
	complexity := -0.5 * linalg.LogDetFromChol(g.chol)
	norm := -0.5 * n * math.Log(2*math.Pi)
	return dataFit + complexity + norm, nil
}

// FitHyper fits the GP and then optimizes kernel hyperparameters (and the
// noise variance) by maximizing log marginal likelihood with restarts
// Nelder-Mead searches in log space: the current hyperparameters plus
// `restarts` random perturbations. The best parameters are installed and
// the GP refitted. All candidate evaluations share one trial model whose
// gram, factor, and d² storage persist across the search, so each
// Nelder-Mead step costs an in-place gram refill plus a factorization and
// no fresh distance work or allocation.
func (g *GP) FitHyper(x [][]float64, y []float64, restarts int, rng *rand.Rand) error {
	if g.legacy {
		return g.fitHyperLegacy(x, y, restarts, rng)
	}
	if err := g.Fit(x, y); err != nil {
		return err
	}
	base := append(g.kernel.Hyper(), math.Log(g.noise))
	trial := &GP{kernel: g.kernel.Clone(), noise: g.noise, workers: g.workers}
	obj := func(lp []float64) float64 {
		for _, v := range lp {
			if v < -12 || v > 8 { // keep hyperparameters in a sane range
				return math.Inf(1)
			}
		}
		trial.kernel.SetHyper(lp[:len(lp)-1])
		trial.noise = math.Exp(lp[len(lp)-1])
		if trial.noise < 1e-10 {
			trial.noise = 1e-10
		}
		if err := trial.Fit(x, y); err != nil {
			return math.Inf(1)
		}
		lml, err := trial.LogMarginalLikelihood()
		if err != nil || math.IsNaN(lml) {
			return math.Inf(1)
		}
		return -lml
	}
	return g.fitHyperSearch(x, y, base, obj, restarts, rng)
}

// fitHyperLegacy is the PR-4 FitHyper: a fresh trial GP (and with it fresh
// gram/factor storage) for every objective evaluation.
func (g *GP) fitHyperLegacy(x [][]float64, y []float64, restarts int, rng *rand.Rand) error {
	if err := g.Fit(x, y); err != nil {
		return err
	}
	base := append(g.kernel.Hyper(), math.Log(g.noise))
	obj := func(lp []float64) float64 {
		for _, v := range lp {
			if v < -12 || v > 8 {
				return math.Inf(1)
			}
		}
		k := g.kernel.Clone()
		k.SetHyper(lp[:len(lp)-1])
		trial := &GP{kernel: k, noise: math.Exp(lp[len(lp)-1]), legacy: true}
		if trial.noise < 1e-10 {
			trial.noise = 1e-10
		}
		if err := trial.Fit(x, y); err != nil {
			return math.Inf(1)
		}
		lml, err := trial.LogMarginalLikelihood()
		if err != nil || math.IsNaN(lml) {
			return math.Inf(1)
		}
		return -lml
	}
	return g.fitHyperSearch(x, y, base, obj, restarts, rng)
}

// fitHyperSearch runs the restarted Nelder-Mead search shared by both
// FitHyper arms, installs the best hyperparameters, and refits.
func (g *GP) fitHyperSearch(x [][]float64, y []float64, base []float64,
	obj func([]float64) float64, restarts int, rng *rand.Rand) error {
	bestLP := append([]float64(nil), base...)
	bestVal := obj(base)
	starts := [][]float64{base}
	for r := 0; r < restarts; r++ {
		s := make([]float64, len(base))
		for i := range s {
			s[i] = base[i] + rng.NormFloat64()*1.5
		}
		starts = append(starts, s)
	}
	for _, s := range starts {
		lp, val := numopt.NelderMead(obj, s, numopt.Options{MaxIter: 120, Scale: 0.3})
		if val < bestVal {
			bestVal, bestLP = val, lp
		}
	}
	if !math.IsInf(bestVal, 1) {
		g.kernel.SetHyper(bestLP[:len(bestLP)-1])
		g.noise = math.Exp(bestLP[len(bestLP)-1])
		if g.noise < 1e-10 {
			g.noise = 1e-10
		}
	}
	return g.Fit(x, y)
}

// N returns the number of training points (0 before Fit).
func (g *GP) N() int { return len(g.x) }
