package gp

import (
	"fmt"
	"math/rand"
	"testing"
)

func perfTrainingData(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		s := 0.0
		for j := range xs[i] {
			xs[i][j] = rng.Float64()
			s += xs[i][j] * xs[i][j]
		}
		ys[i] = s + 0.05*rng.NormFloat64()
	}
	return xs, ys
}

func perfKernels() map[string]Kernel {
	return map[string]Kernel{
		"scaled-matern": Scale(1, NewMatern(2.5, 0.2)),
		"rbf":           NewRBF(0.3),
		"sum":           &Sum{A: NewRBF(0.5), B: &Constant{Value: 0.1}},
		"linear-mix":    &Sum{A: &Linear{Variance: 0.5}, B: NewMatern(1.5, 0.4)},
	}
}

// TestStationaryFuncMatchesEval pins the d²-cache fast path to the exact
// arithmetic of Kernel.Eval: any drift would silently change every gram
// matrix built from cached distances.
func TestStationaryFuncMatchesEval(t *testing.T) {
	xs, _ := perfTrainingData(40, 6, 3)
	for name, k := range perfKernels() {
		f, ok := stationaryFunc(k)
		if name == "linear-mix" {
			if ok {
				t.Fatalf("%s: linear kernel must not report stationary", name)
			}
			continue
		}
		if !ok {
			t.Fatalf("%s: expected stationary fast path", name)
		}
		for i := range xs {
			for j := range xs {
				want := k.Eval(xs[i], xs[j])
				got := f(sqDist(xs[i], xs[j]))
				if got != want {
					t.Fatalf("%s: f(d²) = %v, Eval = %v at (%d,%d)", name, got, want, i, j)
				}
			}
		}
	}
}

// TestParallelGramMatchesSerial is the bitwise-determinism property for
// row-parallel gram construction: any worker count must produce exactly the
// model a serial build produces, because each matrix element has one writer.
func TestParallelGramMatchesSerial(t *testing.T) {
	xs, ys := perfTrainingData(60, 8, 7)
	probe, _ := perfTrainingData(20, 8, 8)
	for name, k := range perfKernels() {
		serial := New(k.Clone(), 1e-6)
		serial.SetWorkers(1)
		if err := serial.Fit(xs, ys); err != nil {
			t.Fatalf("%s serial fit: %v", name, err)
		}
		for _, workers := range []int{2, 4, 7} {
			par := New(k.Clone(), 1e-6)
			par.SetWorkers(workers)
			if err := par.Fit(xs, ys); err != nil {
				t.Fatalf("%s workers=%d fit: %v", name, workers, err)
			}
			for i, v := range serial.gram.Data {
				if par.gram.Data[i] != v {
					t.Fatalf("%s workers=%d: gram differs at %d", name, workers, i)
				}
			}
			for _, p := range probe {
				m1, v1, err1 := serial.Predict(p)
				m2, v2, err2 := par.Predict(p)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s predict: %v %v", name, err1, err2)
				}
				if m1 != m2 || v1 != v2 {
					t.Fatalf("%s workers=%d: prediction differs: (%v,%v) vs (%v,%v)",
						name, workers, m1, v1, m2, v2)
				}
			}
		}
	}
}

// TestLegacyAllocMatchesWorkspacePaths differentially tests the reused-
// buffer Fit/Observe/Predict pipeline against the PR-4 allocating one over
// a grow-predict workload: identical inputs must give bitwise-identical
// predictions at every step.
func TestLegacyAllocMatchesWorkspacePaths(t *testing.T) {
	xs, ys := perfTrainingData(45, 7, 11)
	probe, _ := perfTrainingData(10, 7, 12)
	for name, k := range perfKernels() {
		legacy := New(k.Clone(), 1e-6)
		legacy.SetLegacyAlloc(true)
		fast := New(k.Clone(), 1e-6)
		fast.SetWorkers(3)
		if err := legacy.Fit(xs[:20], ys[:20]); err != nil {
			t.Fatalf("%s legacy fit: %v", name, err)
		}
		if err := fast.Fit(xs[:20], ys[:20]); err != nil {
			t.Fatalf("%s fast fit: %v", name, err)
		}
		for i := 20; i < len(xs); i++ {
			if err := legacy.Observe(xs[i], ys[i]); err != nil {
				t.Fatalf("%s legacy observe %d: %v", name, i, err)
			}
			if err := fast.Observe(xs[i], ys[i]); err != nil {
				t.Fatalf("%s fast observe %d: %v", name, i, err)
			}
			for _, p := range probe {
				m1, v1, err1 := legacy.Predict(p)
				m2, v2, err2 := fast.Predict(p)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s predict: %v %v", name, err1, err2)
				}
				if m1 != m2 || v1 != v2 {
					t.Fatalf("%s step %d: legacy (%v,%v) vs fast (%v,%v)",
						name, i, m1, v1, m2, v2)
				}
			}
		}
	}
}

// TestFitHyperReusedTrialMatchesLegacy checks that sharing one trial model
// across all Nelder-Mead evaluations lands on the same hyperparameters as
// the allocating fresh-model-per-candidate search.
func TestFitHyperReusedTrialMatchesLegacy(t *testing.T) {
	xs, ys := perfTrainingData(30, 5, 21)
	legacy := New(Scale(1, NewMatern(2.5, 0.2)), 1e-6)
	legacy.SetLegacyAlloc(true)
	fast := New(Scale(1, NewMatern(2.5, 0.2)), 1e-6)
	if err := legacy.FitHyper(xs, ys, 2, rand.New(rand.NewSource(5))); err != nil {
		t.Fatalf("legacy fithyper: %v", err)
	}
	if err := fast.FitHyper(xs, ys, 2, rand.New(rand.NewSource(5))); err != nil {
		t.Fatalf("fast fithyper: %v", err)
	}
	lh, fh := legacy.Kernel().Hyper(), fast.Kernel().Hyper()
	for i := range lh {
		if lh[i] != fh[i] {
			t.Fatalf("hyper %d: legacy %v vs fast %v", i, lh, fh)
		}
	}
	if legacy.Noise() != fast.Noise() {
		t.Fatalf("noise: legacy %v vs fast %v", legacy.Noise(), fast.Noise())
	}
}

// TestPredictNMatchesPredict checks the batched path against per-point
// Predict, serial and parallel.
func TestPredictNMatchesPredict(t *testing.T) {
	xs, ys := perfTrainingData(40, 6, 31)
	probe, _ := perfTrainingData(33, 6, 32)
	g := New(Scale(1, NewMatern(2.5, 0.2)), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatalf("fit: %v", err)
	}
	wantM := make([]float64, len(probe))
	wantV := make([]float64, len(probe))
	for i, p := range probe {
		m, v, err := g.Predict(p)
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		wantM[i], wantV[i] = m, v
	}
	for _, workers := range []int{1, 3, 5} {
		g.SetWorkers(workers)
		gotM := make([]float64, len(probe))
		gotV := make([]float64, len(probe))
		if err := g.PredictN(probe, gotM, gotV); err != nil {
			t.Fatalf("predictn workers=%d: %v", workers, err)
		}
		for i := range probe {
			if gotM[i] != wantM[i] || gotV[i] != wantV[i] {
				t.Fatalf("workers=%d point %d: (%v,%v) vs (%v,%v)",
					workers, i, gotM[i], gotV[i], wantM[i], wantV[i])
			}
		}
	}
}

// TestPredictZeroAllocs pins the warm Predict path at zero heap
// allocations per call — the tentpole regression guard.
func TestPredictZeroAllocs(t *testing.T) {
	xs, ys := perfTrainingData(50, 8, 41)
	g := New(Scale(1, NewMatern(2.5, 0.2)), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatalf("fit: %v", err)
	}
	x := xs[0]
	if _, _, err := g.Predict(x); err != nil { // warm the pool
		t.Fatalf("predict: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := g.Predict(x); err != nil {
			t.Fatalf("predict: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("gp.Predict allocates %v per warm call, want 0", allocs)
	}
}

// TestObserveMatchesFitAfterManySteps checks that a long chain of in-place
// incremental updates (grown gram/factor/d² storage) stays numerically
// aligned with a from-scratch fit.
func TestObserveMatchesFitAfterManySteps(t *testing.T) {
	xs, ys := perfTrainingData(40, 6, 51)
	inc := New(Scale(1, NewMatern(2.5, 0.2)), 1e-6)
	if err := inc.Fit(xs[:10], ys[:10]); err != nil {
		t.Fatalf("fit: %v", err)
	}
	for i := 10; i < len(xs); i++ {
		if err := inc.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	full := New(Scale(1, NewMatern(2.5, 0.2)), 1e-6)
	if err := full.Fit(xs, ys); err != nil {
		t.Fatalf("full fit: %v", err)
	}
	probe, _ := perfTrainingData(10, 6, 52)
	for _, p := range probe {
		m1, v1, _ := inc.Predict(p)
		m2, v2, _ := full.Predict(p)
		if diff := m1 - m2; diff > 1e-7 || diff < -1e-7 {
			t.Fatalf("mean drift %v", diff)
		}
		if diff := v1 - v2; diff > 1e-7 || diff < -1e-7 {
			t.Fatalf("variance drift %v", diff)
		}
	}
}

// Deep-history benchmarks: the dense rank-1 observe (O(n²)) and batched
// prediction (O(n) per point after the O(n²) solve cache) at the sizes the
// sparse tier exists for. Compare against BenchmarkSparseObserve to see the
// budget-bounded O(m²) path these costs motivate.
func BenchmarkDenseObserve(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		xs, ys := perfTrainingData(n+b.N+1, 6, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := New(NewRBF(0.4), 1e-6)
			if err := g.Fit(xs[:n], ys[:n]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.Observe(xs[n+i%(len(xs)-n)], ys[n+i%(len(xs)-n)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDensePredictN(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		xs, ys := perfTrainingData(n, 6, 6)
		probes, _ := perfTrainingData(256, 6, 7)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := New(NewRBF(0.4), 1e-6)
			if err := g.Fit(xs, ys); err != nil {
				b.Fatal(err)
			}
			mean := make([]float64, len(probes))
			vari := make([]float64, len(probes))
			if err := g.PredictN(probes, mean, vari); err != nil { // warm solve cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.PredictN(probes, mean, vari); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
