package gp

import (
	"fmt"
	"math"
)

// Task is the separable multi-output (ICM) kernel from the tutorial's
// multi-target optimization slide (59): K((i,x),(j,x')) = K_t(i,j) *
// K_x(x,x'), where the task covariance is 1 on the diagonal and Rho off it.
// Inputs are vectors whose FIRST element is the task index; the remaining
// elements feed the inner kernel. With Rho near 1 the tasks share one
// surface; with Rho 0 they are independent GPs that merely share
// hyperparameters.
type Task struct {
	// Rho is the inter-task correlation in [0, 1).
	Rho float64
	// Inner is the input kernel K_x.
	Inner Kernel
}

// NewTask wraps inner with an inter-task correlation.
func NewTask(rho float64, inner Kernel) *Task {
	if rho < 0 {
		rho = 0
	}
	if rho > 0.999 {
		rho = 0.999
	}
	return &Task{Rho: rho, Inner: inner}
}

// Eval implements Kernel. x[0] and y[0] are task indices.
func (k *Task) Eval(x, y []float64) float64 {
	if len(x) < 2 || len(y) < 2 {
		panic(fmt.Sprintf("gp: task kernel needs [task, features...], got dims %d/%d", len(x), len(y)))
	}
	t := 1.0
	if x[0] != y[0] {
		t = k.Rho
	}
	return t * k.Inner.Eval(x[1:], y[1:])
}

// Hyper implements Kernel: Rho is optimized through a logit transform so
// hyperparameter search stays in (0, 1).
func (k *Task) Hyper() []float64 {
	rho := k.Rho
	if rho <= 0 {
		rho = 1e-6
	}
	if rho >= 1 {
		rho = 1 - 1e-6
	}
	return append([]float64{math.Log(rho / (1 - rho))}, k.Inner.Hyper()...)
}

// SetHyper implements Kernel.
func (k *Task) SetHyper(lp []float64) {
	k.Rho = 1 / (1 + math.Exp(-lp[0]))
	k.Inner.SetHyper(lp[1:])
}

// Clone implements Kernel.
func (k *Task) Clone() Kernel { return &Task{Rho: k.Rho, Inner: k.Inner.Clone()} }

// String implements Kernel.
func (k *Task) String() string { return fmt.Sprintf("Task(rho=%.3f) * %s", k.Rho, k.Inner) }

// WithTask prefixes a feature vector with a task index, producing the
// input layout Task expects.
func WithTask(task int, x []float64) []float64 {
	out := make([]float64, 0, len(x)+1)
	out = append(out, float64(task))
	return append(out, x...)
}
