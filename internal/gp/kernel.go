// Package gp implements exact Gaussian-process regression: a kernel algebra
// (RBF, Matérn, constant, linear, periodic, sums, products, scaling), fitting
// via Cholesky factorization, O(n²) incremental conditioning on new
// observations (Observe: rank-1 Cholesky row updates over a cached gram
// matrix), predictive mean/variance, log marginal likelihood, and
// multi-start hyperparameter optimization.
//
// Inputs are expected to be reasonably scaled — the rest of the framework
// feeds unit-cube encodings from internal/space — and targets are internally
// centered and scaled during Fit.
package gp

import (
	"fmt"
	"math"
)

// Kernel is a positive-semidefinite covariance function with tunable
// hyperparameters exposed in log space for optimization.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
	// Hyper returns the current hyperparameters in log space.
	Hyper() []float64
	// SetHyper installs hyperparameters from log space; len must match.
	SetHyper(logParams []float64)
	// Clone returns an independent copy.
	Clone() Kernel
	// String names the kernel and its parameters.
	String() string
}

// RBF is the squared-exponential kernel exp(-d² / (2ℓ²)).
type RBF struct {
	// Lengthscale ℓ controls smoothness; must be positive.
	Lengthscale float64
}

// NewRBF returns an RBF kernel with the given lengthscale.
func NewRBF(lengthscale float64) *RBF { return &RBF{Lengthscale: lengthscale} }

// Eval implements Kernel.
func (k *RBF) Eval(x, y []float64) float64 {
	d2 := sqDist(x, y)
	return math.Exp(-d2 / (2 * k.Lengthscale * k.Lengthscale))
}

// Hyper implements Kernel.
func (k *RBF) Hyper() []float64 { return []float64{math.Log(k.Lengthscale)} }

// SetHyper implements Kernel.
func (k *RBF) SetHyper(lp []float64) { k.Lengthscale = math.Exp(lp[0]) }

// Clone implements Kernel.
func (k *RBF) Clone() Kernel { c := *k; return &c }

// String implements Kernel.
func (k *RBF) String() string { return fmt.Sprintf("RBF(l=%.4g)", k.Lengthscale) }

// Matern is the Matérn kernel for ν ∈ {1/2, 3/2, 5/2}, the three standard
// half-integer smoothness orders with closed forms.
type Matern struct {
	// Nu selects smoothness: 0.5, 1.5 or 2.5.
	Nu float64
	// Lengthscale ℓ; must be positive.
	Lengthscale float64
}

// NewMatern returns a Matérn kernel. Nu is snapped to the nearest of
// {0.5, 1.5, 2.5}.
func NewMatern(nu, lengthscale float64) *Matern {
	switch {
	case nu < 1:
		nu = 0.5
	case nu < 2:
		nu = 1.5
	default:
		nu = 2.5
	}
	return &Matern{Nu: nu, Lengthscale: lengthscale}
}

// Eval implements Kernel.
func (k *Matern) Eval(x, y []float64) float64 {
	d := math.Sqrt(sqDist(x, y)) / k.Lengthscale
	switch k.Nu {
	case 0.5:
		return math.Exp(-d)
	case 1.5:
		s := math.Sqrt(3) * d
		return (1 + s) * math.Exp(-s)
	default: // 2.5
		s := math.Sqrt(5) * d
		return (1 + s + s*s/3) * math.Exp(-s)
	}
}

// Hyper implements Kernel.
func (k *Matern) Hyper() []float64 { return []float64{math.Log(k.Lengthscale)} }

// SetHyper implements Kernel.
func (k *Matern) SetHyper(lp []float64) { k.Lengthscale = math.Exp(lp[0]) }

// Clone implements Kernel.
func (k *Matern) Clone() Kernel { c := *k; return &c }

// String implements Kernel.
func (k *Matern) String() string {
	return fmt.Sprintf("Matern(nu=%.1f, l=%.4g)", k.Nu, k.Lengthscale)
}

// Constant is the constant kernel k(x,y) = c, modelling a global offset.
type Constant struct {
	// Value c; must be positive.
	Value float64
}

// Eval implements Kernel.
func (k *Constant) Eval(x, y []float64) float64 { return k.Value }

// Hyper implements Kernel.
func (k *Constant) Hyper() []float64 { return []float64{math.Log(k.Value)} }

// SetHyper implements Kernel.
func (k *Constant) SetHyper(lp []float64) { k.Value = math.Exp(lp[0]) }

// Clone implements Kernel.
func (k *Constant) Clone() Kernel { c := *k; return &c }

// String implements Kernel.
func (k *Constant) String() string { return fmt.Sprintf("Const(%.4g)", k.Value) }

// Linear is the dot-product kernel σ² ⟨x, y⟩, modelling linear trends.
type Linear struct {
	// Variance σ²; must be positive.
	Variance float64
}

// Eval implements Kernel.
func (k *Linear) Eval(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return k.Variance * s
}

// Hyper implements Kernel.
func (k *Linear) Hyper() []float64 { return []float64{math.Log(k.Variance)} }

// SetHyper implements Kernel.
func (k *Linear) SetHyper(lp []float64) { k.Variance = math.Exp(lp[0]) }

// Clone implements Kernel.
func (k *Linear) Clone() Kernel { c := *k; return &c }

// String implements Kernel.
func (k *Linear) String() string { return fmt.Sprintf("Linear(v=%.4g)", k.Variance) }

// Periodic is the exp-sine-squared kernel capturing repeating structure.
type Periodic struct {
	// Lengthscale within a period; must be positive.
	Lengthscale float64
	// Period of repetition; must be positive.
	Period float64
}

// Eval implements Kernel.
func (k *Periodic) Eval(x, y []float64) float64 {
	d := math.Sqrt(sqDist(x, y))
	s := math.Sin(math.Pi * d / k.Period)
	return math.Exp(-2 * s * s / (k.Lengthscale * k.Lengthscale))
}

// Hyper implements Kernel.
func (k *Periodic) Hyper() []float64 {
	return []float64{math.Log(k.Lengthscale), math.Log(k.Period)}
}

// SetHyper implements Kernel.
func (k *Periodic) SetHyper(lp []float64) {
	k.Lengthscale = math.Exp(lp[0])
	k.Period = math.Exp(lp[1])
}

// Clone implements Kernel.
func (k *Periodic) Clone() Kernel { c := *k; return &c }

// String implements Kernel.
func (k *Periodic) String() string {
	return fmt.Sprintf("Periodic(l=%.4g, p=%.4g)", k.Lengthscale, k.Period)
}

// Scaled multiplies an inner kernel by a signal variance σ².
type Scaled struct {
	// Variance σ²; must be positive.
	Variance float64
	// Inner kernel.
	Inner Kernel
}

// Scale wraps inner with a signal variance.
func Scale(variance float64, inner Kernel) *Scaled {
	return &Scaled{Variance: variance, Inner: inner}
}

// Eval implements Kernel.
func (k *Scaled) Eval(x, y []float64) float64 { return k.Variance * k.Inner.Eval(x, y) }

// Hyper implements Kernel.
func (k *Scaled) Hyper() []float64 {
	return append([]float64{math.Log(k.Variance)}, k.Inner.Hyper()...)
}

// SetHyper implements Kernel.
func (k *Scaled) SetHyper(lp []float64) {
	k.Variance = math.Exp(lp[0])
	k.Inner.SetHyper(lp[1:])
}

// Clone implements Kernel.
func (k *Scaled) Clone() Kernel { return &Scaled{Variance: k.Variance, Inner: k.Inner.Clone()} }

// String implements Kernel.
func (k *Scaled) String() string {
	return fmt.Sprintf("%.4g * %s", k.Variance, k.Inner)
}

// Sum adds two kernels.
type Sum struct{ A, B Kernel }

// Eval implements Kernel.
func (k *Sum) Eval(x, y []float64) float64 { return k.A.Eval(x, y) + k.B.Eval(x, y) }

// Hyper implements Kernel.
func (k *Sum) Hyper() []float64 { return append(k.A.Hyper(), k.B.Hyper()...) }

// SetHyper implements Kernel.
func (k *Sum) SetHyper(lp []float64) {
	na := len(k.A.Hyper())
	k.A.SetHyper(lp[:na])
	k.B.SetHyper(lp[na:])
}

// Clone implements Kernel.
func (k *Sum) Clone() Kernel { return &Sum{A: k.A.Clone(), B: k.B.Clone()} }

// String implements Kernel.
func (k *Sum) String() string { return fmt.Sprintf("(%s + %s)", k.A, k.B) }

// Product multiplies two kernels.
type Product struct{ A, B Kernel }

// Eval implements Kernel.
func (k *Product) Eval(x, y []float64) float64 { return k.A.Eval(x, y) * k.B.Eval(x, y) }

// Hyper implements Kernel.
func (k *Product) Hyper() []float64 { return append(k.A.Hyper(), k.B.Hyper()...) }

// SetHyper implements Kernel.
func (k *Product) SetHyper(lp []float64) {
	na := len(k.A.Hyper())
	k.A.SetHyper(lp[:na])
	k.B.SetHyper(lp[na:])
}

// Clone implements Kernel.
func (k *Product) Clone() Kernel { return &Product{A: k.A.Clone(), B: k.B.Clone()} }

// String implements Kernel.
func (k *Product) String() string { return fmt.Sprintf("(%s * %s)", k.A, k.B) }

// stationaryFunc returns the kernel as a function of squared distance when
// its value depends on the inputs only through d² — true for RBF, Matérn,
// Periodic, Constant, and any Scaled/Sum/Product combination of those. The
// returned closure replicates Eval's arithmetic expression-for-expression
// (2·ℓ·ℓ, not a precomputed 1/ℓ²), so gram matrices built from cached
// distances are bitwise identical to ones built from raw points. Linear and
// the multitask Task kernel read coordinates directly and report ok=false;
// callers then fall back to Eval.
func stationaryFunc(k Kernel) (func(d2 float64) float64, bool) {
	switch k := k.(type) {
	case *RBF:
		l := k.Lengthscale
		return func(d2 float64) float64 {
			return math.Exp(-d2 / (2 * l * l))
		}, true
	case *Matern:
		l := k.Lengthscale
		switch k.Nu {
		case 0.5:
			return func(d2 float64) float64 {
				d := math.Sqrt(d2) / l
				return math.Exp(-d)
			}, true
		case 1.5:
			return func(d2 float64) float64 {
				d := math.Sqrt(d2) / l
				s := math.Sqrt(3) * d
				return (1 + s) * math.Exp(-s)
			}, true
		default: // 2.5
			return func(d2 float64) float64 {
				d := math.Sqrt(d2) / l
				s := math.Sqrt(5) * d
				return (1 + s + s*s/3) * math.Exp(-s)
			}, true
		}
	case *Periodic:
		l, p := k.Lengthscale, k.Period
		return func(d2 float64) float64 {
			d := math.Sqrt(d2)
			s := math.Sin(math.Pi * d / p)
			return math.Exp(-2 * s * s / (l * l))
		}, true
	case *Constant:
		v := k.Value
		return func(float64) float64 { return v }, true
	case *Scaled:
		inner, ok := stationaryFunc(k.Inner)
		if !ok {
			return nil, false
		}
		v := k.Variance
		return func(d2 float64) float64 { return v * inner(d2) }, true
	case *Sum:
		a, okA := stationaryFunc(k.A)
		b, okB := stationaryFunc(k.B)
		if !okA || !okB {
			return nil, false
		}
		return func(d2 float64) float64 { return a(d2) + b(d2) }, true
	case *Product:
		a, okA := stationaryFunc(k.A)
		b, okB := stationaryFunc(k.B)
		if !okA || !okB {
			return nil, false
		}
		return func(d2 float64) float64 { return a(d2) * b(d2) }, true
	}
	return nil, false
}

func sqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("gp: dim mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}
