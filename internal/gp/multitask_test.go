package gp

import (
	"math"
	"math/rand"
	"testing"
)

func TestTaskKernelBasics(t *testing.T) {
	k := NewTask(0.5, NewRBF(1))
	x := WithTask(0, []float64{0.3})
	ySame := WithTask(0, []float64{0.3})
	yOther := WithTask(1, []float64{0.3})
	if k.Eval(x, ySame) != 1 {
		t.Fatalf("same task same point = %v", k.Eval(x, ySame))
	}
	if math.Abs(k.Eval(x, yOther)-0.5) > 1e-12 {
		t.Fatalf("cross task = %v, want rho", k.Eval(x, yOther))
	}
	// Hyper round trip preserves rho through the logit transform.
	k2 := k.Clone()
	k2.SetHyper(k.Hyper())
	if math.Abs(k2.(*Task).Rho-0.5) > 1e-9 {
		t.Fatalf("rho round trip = %v", k2.(*Task).Rho)
	}
	// Clamping.
	if NewTask(-1, NewRBF(1)).Rho != 0 || NewTask(2, NewRBF(1)).Rho >= 1 {
		t.Fatal("rho clamping failed")
	}
}

func TestTaskKernelPanicsOnScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTask(0.5, NewRBF(1)).Eval([]float64{1}, []float64{1})
}

// Correlated tasks: observations on task 0 should sharpen predictions on
// task 1 when rho is high but not when rho is 0.
func TestMultiTaskTransfer(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(4 * x) }
	// Task 0: densely observed. Task 1: two points only; its true function
	// is the same (perfectly correlated scenario).
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		x := float64(i) / 14
		xs = append(xs, WithTask(0, []float64{x}))
		ys = append(ys, f(x))
	}
	xs = append(xs, WithTask(1, []float64{0}), WithTask(1, []float64{1}))
	ys = append(ys, f(0), f(1))

	predErr := func(rho float64) float64 {
		m := New(Scale(1, NewTask(rho, NewRBF(0.25))), 1e-6)
		if err := m.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		// Predict task 1 at interior points it has never seen.
		sse := 0.0
		for i := 1; i < 10; i++ {
			x := float64(i) / 10
			mu, _, err := m.Predict(WithTask(1, []float64{x}))
			if err != nil {
				t.Fatal(err)
			}
			sse += (mu - f(x)) * (mu - f(x))
		}
		return sse
	}
	high := predErr(0.95)
	low := predErr(0.0)
	if !(high < low/4) {
		t.Fatalf("correlated tasks should transfer: sse(rho=.95)=%v sse(rho=0)=%v", high, low)
	}
}

func TestMultiTaskHyperFitLearnsRho(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two perfectly correlated tasks: hyper fitting should push rho up.
	f := func(x float64) float64 { return x * x }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 12; i++ {
		x := float64(i) / 11
		xs = append(xs, WithTask(i%2, []float64{x}))
		ys = append(ys, f(x))
	}
	k := NewTask(0.2, NewRBF(0.3))
	m := New(Scale(1, k), 1e-4)
	if err := m.FitHyper(xs, ys, 3, rng); err != nil {
		t.Fatal(err)
	}
	if k.Rho < 0.5 {
		t.Fatalf("fitted rho = %v, want high for identical tasks", k.Rho)
	}
}
