package gp

import (
	"math"
	"math/rand"
)

// sparse.go is the subset-of-data sparse tier: past a fixed inducing
// budget m, the model conditions on a deterministically chosen subset of
// the history instead of all n points, turning O(n²) observes and O(n²)
// memory into O(m²) while the full history stays available for incumbent
// tracking and periodic reselection. Below the budget the sparse model
// delegates every call to the inner exact GP, so "sparse == dense below
// the switch threshold" holds bitwise, not approximately.

// SparseStats counts how the inducing set has been maintained.
type SparseStats struct {
	// Absorbed is the number of observations rank-1-updated into the
	// inducing model (always, below budget; incumbent improvements above).
	Absorbed int
	// Skipped observations were recorded in the history but not absorbed;
	// they stay eligible for the next reselection.
	Skipped int
	// Rebuilds counts inducing-set reselections followed by a refit.
	Rebuilds int
}

// SparseGP is a subset-of-data approximation around an exact GP. It keeps
// the entire observation history (O(n·d) memory) but conditions the inner
// model on at most ~budget inducing points:
//
//   - While the history fits the budget the inner GP sees everything and
//     the sparse model is the dense model, same code path, same bits.
//   - Past the budget, observations that improve the incumbent are
//     absorbed with the same rank-1 Cholesky update the dense tier uses;
//     the rest are recorded in O(1) and wait for reselection.
//   - Every rebuildEvery observations past saturation the inducing set is
//     reselected from scratch — half exploitation (the lowest-y points,
//     which cluster where acquisition needs mean accuracy) and half
//     coverage (greedy farthest-point over the remainder, which keeps
//     variance calibrated far from the incumbent) — and the inner model
//     is refit in O(m³), amortized to O(m³/rebuildEvery) per observe.
//
// Selection is a pure function of (history, seed): greedy maximin with
// ties broken by a hash of (seed, candidate index), so two instances fed
// the same history always condition on the same subset.
type SparseGP struct {
	inner        *GP
	budget       int
	rebuildEvery int
	seed         int64

	xs [][]float64 // full history; rows are stored as given (not copied)
	ys []float64

	active       []int // history indices the inner model conditions on, absorb order
	sinceRebuild int
	stats        SparseStats

	// selection scratch, reused across rebuilds
	minD2  []float64
	chosen []bool
	selBuf []int
}

// NewSparse returns a sparse GP with the given inducing budget. budget <= 0
// defaults to 256. The seed decorrelates selection tie-breaks across
// studies; any fixed value is fine.
func NewSparse(kernel Kernel, noise float64, budget int, seed int64) *SparseGP {
	if budget <= 0 {
		budget = 256
	}
	every := budget / 2
	if every < 1 {
		every = 1
	}
	return &SparseGP{
		inner:        New(kernel, noise),
		budget:       budget,
		rebuildEvery: every,
		seed:         seed,
	}
}

// Kernel returns the inner model's kernel.
func (s *SparseGP) Kernel() Kernel { return s.inner.Kernel() }

// Noise returns the inner model's noise level.
func (s *SparseGP) Noise() float64 { return s.inner.Noise() }

// SetWorkers sets the inner model's gram/predict worker count.
func (s *SparseGP) SetWorkers(n int) { s.inner.SetWorkers(n) }

// N is the full history size (not the inducing-set size).
func (s *SparseGP) N() int { return len(s.xs) }

// ActiveN is the number of points the inner model currently conditions on.
func (s *SparseGP) ActiveN() int { return len(s.active) }

// Stats returns the absorb/skip/rebuild counters.
func (s *SparseGP) Stats() SparseStats { return s.stats }

// Fit replaces the history and rebuilds the inducing set. With
// len(x) <= budget this is exactly inner.Fit on the full data.
func (s *SparseGP) Fit(x [][]float64, y []float64) error {
	return s.fitWith(x, y, func(ax [][]float64, ay []float64) error {
		return s.inner.Fit(ax, ay)
	})
}

// FitHyper is Fit plus a hyperparameter search on the inducing subset.
// The rng draws exactly what the inner FitHyper draws, so below budget the
// consumption matches the dense tier's and bitwise equivalence holds.
func (s *SparseGP) FitHyper(x [][]float64, y []float64, restarts int, rng *rand.Rand) error {
	return s.fitWith(x, y, func(ax [][]float64, ay []float64) error {
		return s.inner.FitHyper(ax, ay, restarts, rng)
	})
}

func (s *SparseGP) fitWith(x [][]float64, y []float64, fit func([][]float64, []float64) error) error {
	s.xs = append(s.xs[:0], x...)
	s.ys = append(s.ys[:0], y...)
	s.sinceRebuild = 0
	if len(x) <= s.budget {
		s.active = s.active[:0]
		for i := range x {
			s.active = append(s.active, i)
		}
		return fit(x, y)
	}
	s.active = append(s.active[:0], s.selectInducing()...)
	ax, ay := s.gather(s.active)
	return fit(ax, ay)
}

// Observe appends one observation. Below budget it is the dense rank-1
// update; at budget, incumbent improvements are absorbed rank-1 and the
// rest recorded in O(1) until the next reselection.
func (s *SparseGP) Observe(x []float64, y float64) error {
	if len(s.xs) == 0 && s.inner.N() == 0 {
		s.xs = append(s.xs, x)
		s.ys = append(s.ys, y)
		s.active = append(s.active[:0], 0)
		return s.inner.Fit(s.xs[:1], s.ys[:1])
	}
	idx := len(s.xs)
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)

	absorb := len(s.active) < s.budget || y < s.activeMinY()
	if absorb {
		if err := s.inner.Observe(x, y); err != nil {
			return err
		}
		s.active = append(s.active, idx)
		s.stats.Absorbed++
	} else {
		s.stats.Skipped++
	}

	if len(s.xs) > s.budget {
		s.sinceRebuild++
		if s.sinceRebuild >= s.rebuildEvery {
			return s.rebuild()
		}
	}
	return nil
}

// rebuild reselects the inducing set from the full history and refits the
// inner model when the selection changed.
func (s *SparseGP) rebuild() error {
	s.sinceRebuild = 0
	sel := s.selectInducing()
	s.stats.Rebuilds++
	if intsEqual(sel, s.active) {
		return nil
	}
	s.active = append(s.active[:0], sel...)
	ax, ay := s.gather(s.active)
	return s.inner.Fit(ax, ay)
}

// activeMinY is the lowest target among currently absorbed points; +Inf
// when nothing is absorbed.
func (s *SparseGP) activeMinY() float64 {
	best := math.Inf(1)
	for _, i := range s.active {
		if s.ys[i] < best {
			best = s.ys[i]
		}
	}
	return best
}

// gather copies the selected history rows into fresh header slices. The
// headers must be fresh each time: the inner Fit keeps the slice it is
// given for its gram-reuse identity checks, so recycling a buffer across
// rebuilds would make a stale gram look current.
func (s *SparseGP) gather(idx []int) ([][]float64, []float64) {
	ax := make([][]float64, 0, len(idx))
	ay := make([]float64, 0, len(idx))
	for _, i := range idx {
		ax = append(ax, s.xs[i])
		ay = append(ay, s.ys[i])
	}
	return ax, ay
}

// selectInducing picks the inducing subset deterministically: the
// incumbent plus the best-y half for exploitation, then greedy
// farthest-point (maximin d²) over the rest for coverage. Returned
// indices are sorted ascending so refits absorb in history order.
func (s *SparseGP) selectInducing() []int {
	n := len(s.xs)
	if n <= s.budget {
		sel := s.selBuf[:0]
		for i := 0; i < n; i++ {
			sel = append(sel, i)
		}
		s.selBuf = sel
		return sel
	}
	if cap(s.minD2) < n {
		s.minD2 = make([]float64, n)
		s.chosen = make([]bool, n)
	}
	minD2 := s.minD2[:n]
	chosen := s.chosen[:n]
	for i := range chosen {
		chosen[i] = false
		minD2[i] = math.Inf(1)
	}
	sel := s.selBuf[:0]

	// Exploitation half: lowest targets, lowest index on ties. Selection
	// by repeated scan keeps this allocation-free; budget is small.
	half := s.budget / 2
	if half < 1 {
		half = 1
	}
	for k := 0; k < half; k++ {
		pick := -1
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			if pick < 0 || s.ys[i] < s.ys[pick] {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		chosen[pick] = true
		sel = append(sel, pick)
		updateMinD2(minD2, chosen, s.xs, s.xs[pick])
	}

	// Coverage half: greedy maximin over the remainder. Ties broken by a
	// hash of (seed, index) so the choice is deterministic but
	// decorrelated across studies.
	for len(sel) < s.budget {
		pick := -1
		var pickD2 float64
		var pickTie uint64
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			d2 := minD2[i]
			tie := mix64(uint64(s.seed) ^ uint64(i)*0x9e3779b97f4a7c15)
			if pick < 0 || d2 > pickD2 || (d2 == pickD2 && tie < pickTie) {
				pick, pickD2, pickTie = i, d2, tie
			}
		}
		if pick < 0 {
			break
		}
		chosen[pick] = true
		sel = append(sel, pick)
		updateMinD2(minD2, chosen, s.xs, s.xs[pick])
	}

	sortInts(sel)
	s.selBuf = sel
	return sel
}

// updateMinD2 folds a newly chosen row into the maximin distances.
//
//autolint:hotpath
func updateMinD2(minD2 []float64, chosen []bool, xs [][]float64, row []float64) {
	for i := range minD2 {
		if chosen[i] {
			continue
		}
		d2 := sqDist(xs[i], row)
		if d2 < minD2[i] {
			minD2[i] = d2
		}
	}
}

// mix64 is the SplitMix64 finalizer, the same mix the acquisition search
// uses to derive restart streams.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sortInts is an insertion sort: selection sets are small (≤ budget) and
// nearly sorted, and this keeps the package free of sort-package closures
// on the hot maintenance path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MinY is the incumbent over the FULL history, not just the inducing set:
// expected-improvement baselines must not drift when points are skipped.
func (s *SparseGP) MinY() float64 {
	if len(s.ys) == 0 {
		return s.inner.MinY()
	}
	best := s.ys[0]
	for _, y := range s.ys[1:] {
		if y < best {
			best = y
		}
	}
	return best
}

// Predict delegates to the inducing model.
func (s *SparseGP) Predict(x []float64) (mean, variance float64, err error) {
	return s.inner.Predict(x)
}

// PredictWS delegates to the inducing model with a caller workspace.
func (s *SparseGP) PredictWS(ws *Workspace, x []float64) (mean, variance float64, err error) {
	return s.inner.PredictWS(ws, x)
}

// PredictN delegates batch prediction to the inducing model.
func (s *SparseGP) PredictN(xs [][]float64, mean, variance []float64) error {
	return s.inner.PredictN(xs, mean, variance)
}

// LogMarginalLikelihood is the inducing model's likelihood (of the subset).
func (s *SparseGP) LogMarginalLikelihood() (float64, error) {
	return s.inner.LogMarginalLikelihood()
}

// Clone deep-copies the sparse model for constant-liar fantasies. History
// rows are shared read-only, matching the dense Clone's discipline.
func (s *SparseGP) Clone() *SparseGP {
	c := &SparseGP{
		inner:        s.inner.Clone(),
		budget:       s.budget,
		rebuildEvery: s.rebuildEvery,
		seed:         s.seed,
		sinceRebuild: s.sinceRebuild,
		stats:        s.stats,
	}
	c.xs = append([][]float64(nil), s.xs...)
	c.ys = append([]float64(nil), s.ys...)
	c.active = append([]int(nil), s.active...)
	return c
}
