// Package cmaes implements the CMA-ES evolution strategy (Hansen 2023):
// rank-µ and rank-one covariance matrix adaptation with cumulative step-size
// adaptation (CSA). The search runs in the unit-cube encoding of the
// configuration space; suggestions are decoded back to typed configs.
//
// The optimizer fits the framework's sequential Suggest/Observe protocol by
// buffering one generation at a time: λ suggestions are drawn from the
// current search distribution, and once all λ observations have arrived the
// distribution parameters (mean, step size, covariance) are updated.
package cmaes

import (
	"math"
	"math/rand"

	"autotune/internal/linalg"
	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// Options configures CMA-ES.
type Options struct {
	// Lambda is the population size (default 4 + floor(3 ln d)).
	Lambda int
	// Sigma0 is the initial step size in unit-cube units (default 0.3).
	Sigma0 float64
}

// CMAES implements optimizer.Optimizer and optimizer.BatchSuggester.
type CMAES struct {
	optimizer.Recorder
	space *space.Space
	rng   *rand.Rand

	dim    int
	lambda int
	mu     int
	wts    []float64
	muEff  float64

	// Strategy parameters.
	cSigma, dSigma float64
	cc, c1, cMu    float64
	chiN           float64

	// State.
	mean   []float64
	sigma  float64
	cov    *linalg.Matrix
	pSigma []float64
	pc     []float64
	gen    int

	// Eigen cache of cov: cov = B diag(d²) Bᵀ.
	eigB *linalg.Matrix
	eigD []float64

	// Current generation bookkeeping.
	pending   []genSample // suggested, awaiting observation
	nextIdx   int
	observed  []genSample
	genActive bool
}

type genSample struct {
	z   []float64 // standard normal draw
	y   []float64 // B D z (unscaled step)
	x   []float64 // mean + sigma*y, clipped
	key string
	val float64
}

// New returns a CMA-ES optimizer with default options.
func New(s *space.Space, rng *rand.Rand) *CMAES {
	return NewWith(s, rng, Options{})
}

// NewWith returns a CMA-ES optimizer with explicit options.
func NewWith(s *space.Space, rng *rand.Rand, opts Options) *CMAES {
	d := s.Dim()
	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = 4 + int(math.Floor(3*math.Log(float64(d))))
	}
	if lambda < 4 {
		lambda = 4
	}
	mu := lambda / 2
	wts := make([]float64, mu)
	sum := 0.0
	for i := range wts {
		wts[i] = math.Log(float64(lambda)/2+0.5) - math.Log(float64(i+1))
		sum += wts[i]
	}
	muEff := 0.0
	for i := range wts {
		wts[i] /= sum
		muEff += wts[i] * wts[i]
	}
	muEff = 1 / muEff

	n := float64(d)
	c := &CMAES{
		space:  s,
		rng:    rng,
		dim:    d,
		lambda: lambda,
		mu:     mu,
		wts:    wts,
		muEff:  muEff,
		cSigma: (muEff + 2) / (n + muEff + 5),
		cc:     (4 + muEff/n) / (n + 4 + 2*muEff/n),
		chiN:   math.Sqrt(n) * (1 - 1/(4*n) + 1/(21*n*n)),
		sigma:  opts.Sigma0,
	}
	c.dSigma = 1 + 2*math.Max(0, math.Sqrt((muEff-1)/(n+1))-1) + c.cSigma
	c.c1 = 2 / ((n+1.3)*(n+1.3) + muEff)
	c.cMu = math.Min(1-c.c1, 2*(muEff-2+1/muEff)/((n+2)*(n+2)+muEff))
	if c.sigma <= 0 {
		c.sigma = 0.3
	}
	// Start at the encoded default configuration.
	c.mean = s.Encode(s.Default())
	c.cov = linalg.Identity(d)
	c.pSigma = make([]float64, d)
	c.pc = make([]float64, d)
	c.refreshEigen()
	return c
}

// Name implements optimizer.Optimizer.
func (c *CMAES) Name() string { return "cmaes" }

// Lambda returns the population size.
func (c *CMAES) Lambda() int { return c.lambda }

// Sigma returns the current global step size.
func (c *CMAES) Sigma() float64 { return c.sigma }

func (c *CMAES) refreshEigen() {
	vals, vecs, err := linalg.SymEigen(c.cov)
	if err != nil {
		c.cov = linalg.Identity(c.dim)
		vals = make([]float64, c.dim)
		for i := range vals {
			vals[i] = 1
		}
		vecs = linalg.Identity(c.dim)
	}
	d := make([]float64, len(vals))
	for i, v := range vals {
		if v < 1e-20 {
			v = 1e-20
		}
		d[i] = math.Sqrt(v)
	}
	c.eigB = vecs
	c.eigD = d
}

// drawGeneration samples λ candidates from N(mean, σ² C).
func (c *CMAES) drawGeneration() {
	c.pending = c.pending[:0]
	c.observed = c.observed[:0]
	c.nextIdx = 0
	c.genActive = true
	for i := 0; i < c.lambda; i++ {
		z := make([]float64, c.dim)
		for j := range z {
			z[j] = c.rng.NormFloat64()
		}
		// y = B * (D .* z)
		dz := make([]float64, c.dim)
		for j := range dz {
			dz[j] = c.eigD[j] * z[j]
		}
		y := c.eigB.MulVec(dz)
		x := make([]float64, c.dim)
		for j := range x {
			x[j] = c.mean[j] + c.sigma*y[j]
			if x[j] < 0 {
				x[j] = 0
			}
			if x[j] > 1 {
				x[j] = 1
			}
		}
		cfg := c.space.Decode(x)
		c.pending = append(c.pending, genSample{z: z, y: y, x: x, key: cfg.Key()})
	}
}

// Suggest implements optimizer.Optimizer.
func (c *CMAES) Suggest() (space.Config, error) {
	if !c.genActive {
		c.drawGeneration()
	}
	if c.nextIdx >= len(c.pending) {
		// The whole generation has been handed out but not fully observed:
		// re-suggest the first still-unobserved sample rather than stall.
		for i := range c.pending {
			if c.pending[i].key != "" {
				return c.space.Decode(c.pending[i].x), nil
			}
		}
		// Everything observed (shouldn't happen: update() would have run);
		// start a fresh generation defensively.
		c.drawGeneration()
	}
	s := c.pending[c.nextIdx]
	c.nextIdx++
	return c.space.Decode(s.x), nil
}

// SuggestN implements optimizer.BatchSuggester. CMA-ES is naturally
// parallel: a whole generation can be evaluated at once.
func (c *CMAES) SuggestN(n int) ([]space.Config, error) {
	out := make([]space.Config, 0, n)
	for i := 0; i < n; i++ {
		cfg, err := c.Suggest()
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// Observe implements optimizer.Optimizer. Observations are matched to the
// pending generation by config identity; once λ arrive the distribution is
// updated. Foreign observations (warm-start data) update only the incumbent.
func (c *CMAES) Observe(cfg space.Config, value float64) error {
	if err := c.Recorder.Observe(cfg, value); err != nil {
		return err
	}
	if !c.genActive {
		return nil
	}
	key := cfg.Key()
	for i := range c.pending {
		if c.pending[i].key == key {
			s := c.pending[i]
			s.val = value
			c.observed = append(c.observed, s)
			// Remove from pending by swapping with the last un-suggested slot
			// is unnecessary; mark matched by clearing the key.
			c.pending[i].key = ""
			break
		}
	}
	if len(c.observed) >= c.lambda {
		c.update()
		c.genActive = false
	}
	return nil
}

// update applies the CMA-ES parameter update from the observed generation.
func (c *CMAES) update() {
	gen := c.observed
	// Sort by fitness ascending (minimization); insertion sort, λ small.
	for i := 1; i < len(gen); i++ {
		for j := i; j > 0 && gen[j].val < gen[j-1].val; j-- {
			gen[j], gen[j-1] = gen[j-1], gen[j]
		}
	}
	n := float64(c.dim)
	// Weighted mean of top-µ steps.
	yw := make([]float64, c.dim)
	for i := 0; i < c.mu; i++ {
		linalg.AXPY(c.wts[i], gen[i].y, yw)
	}
	for j := range c.mean {
		c.mean[j] += c.sigma * yw[j]
		if c.mean[j] < 0 {
			c.mean[j] = 0
		}
		if c.mean[j] > 1 {
			c.mean[j] = 1
		}
	}

	// Step-size path: p_σ update uses C^(-1/2) y_w = B D^{-1} Bᵀ y_w.
	bty := c.eigB.T().MulVec(yw)
	for j := range bty {
		bty[j] /= c.eigD[j]
	}
	cInvSqrtYw := c.eigB.MulVec(bty)
	csFac := math.Sqrt(c.cSigma * (2 - c.cSigma) * c.muEff)
	for j := range c.pSigma {
		c.pSigma[j] = (1-c.cSigma)*c.pSigma[j] + csFac*cInvSqrtYw[j]
	}
	psNorm := linalg.Norm2(c.pSigma)
	c.sigma *= math.Exp((c.cSigma / c.dSigma) * (psNorm/c.chiN - 1))
	if c.sigma > 1 {
		c.sigma = 1 // unit cube: bigger steps are pointless
	}
	if c.sigma < 1e-8 {
		c.sigma = 1e-8
	}

	// Covariance path with stall (hsig) heuristic.
	hsig := 0.0
	denom := math.Sqrt(1 - math.Pow(1-c.cSigma, 2*float64(c.gen+1)))
	if psNorm/denom/c.chiN < 1.4+2/(n+1) {
		hsig = 1
	}
	ccFac := math.Sqrt(c.cc * (2 - c.cc) * c.muEff)
	for j := range c.pc {
		c.pc[j] = (1-c.cc)*c.pc[j] + hsig*ccFac*yw[j]
	}

	// Covariance update: rank-one + rank-µ.
	oneMinus := 1 - c.c1 - c.cMu
	for i := 0; i < c.dim; i++ {
		for j := 0; j < c.dim; j++ {
			v := oneMinus * c.cov.At(i, j)
			v += c.c1 * (c.pc[i]*c.pc[j] + (1-hsig)*c.cc*(2-c.cc)*c.cov.At(i, j))
			for k := 0; k < c.mu; k++ {
				v += c.cMu * c.wts[k] * gen[k].y[i] * gen[k].y[j]
			}
			c.cov.Set(i, j, v)
		}
	}
	c.gen++
	c.refreshEigen()
}

// Generation returns the number of completed generations.
func (c *CMAES) Generation() int { return c.gen }
