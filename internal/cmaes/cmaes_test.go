package cmaes

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/space"
	"autotune/internal/testfunc"
)

func TestCMAESOnSphere(t *testing.T) {
	f := testfunc.Sphere(4)
	c := New(f.Space, rand.New(rand.NewSource(1)))
	_, val, err := optimizer.Run(c, f.Eval, 300)
	if err != nil {
		t.Fatal(err)
	}
	if val > 0.5 {
		t.Fatalf("CMA-ES best on sphere = %v", val)
	}
	if c.Generation() < 10 {
		t.Fatalf("generations = %d", c.Generation())
	}
}

func TestCMAESOnRosenbrock(t *testing.T) {
	f := testfunc.Rosenbrock(3)
	c := New(f.Space, rand.New(rand.NewSource(2)))
	_, val, err := optimizer.Run(c, f.Eval, 600)
	if err != nil {
		t.Fatal(err)
	}
	if val > 1.5 {
		t.Fatalf("CMA-ES best on rosenbrock = %v", val)
	}
}

func TestCMAESBeatsRandomOnRastrigin(t *testing.T) {
	f := testfunc.Rastrigin(4)
	budget := 400
	var cSum, rSum float64
	seeds := 5
	for i := 0; i < seeds; i++ {
		c := New(f.Space, rand.New(rand.NewSource(int64(20+i))))
		r := optimizer.NewRandom(f.Space, rand.New(rand.NewSource(int64(20+i))))
		_, cv, err := optimizer.Run(c, f.Eval, budget)
		if err != nil {
			t.Fatal(err)
		}
		_, rv, err := optimizer.Run(r, f.Eval, budget)
		if err != nil {
			t.Fatal(err)
		}
		cSum += cv
		rSum += rv
	}
	if cSum >= rSum {
		t.Fatalf("CMA-ES mean %v should beat random mean %v", cSum/float64(seeds), rSum/float64(seeds))
	}
}

func TestCMAESDefaultLambda(t *testing.T) {
	f := testfunc.Sphere(4)
	c := New(f.Space, rand.New(rand.NewSource(3)))
	want := 4 + int(math.Floor(3*math.Log(4)))
	if c.Lambda() != want {
		t.Fatalf("lambda = %d, want %d", c.Lambda(), want)
	}
	c2 := NewWith(f.Space, rand.New(rand.NewSource(3)), Options{Lambda: 10})
	if c2.Lambda() != 10 {
		t.Fatal("explicit lambda ignored")
	}
}

func TestCMAESSigmaAdapts(t *testing.T) {
	f := testfunc.Sphere(2)
	c := New(f.Space, rand.New(rand.NewSource(4)))
	s0 := c.Sigma()
	if _, _, err := optimizer.Run(c, f.Eval, 400); err != nil {
		t.Fatal(err)
	}
	// Near convergence the step size should have shrunk.
	if !(c.Sigma() < s0) {
		t.Fatalf("sigma did not shrink: %v -> %v", s0, c.Sigma())
	}
}

func TestCMAESSuggestNFullGeneration(t *testing.T) {
	f := testfunc.Sphere(3)
	c := New(f.Space, rand.New(rand.NewSource(5)))
	batch, err := c.SuggestN(c.Lambda())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != c.Lambda() {
		t.Fatalf("batch = %d", len(batch))
	}
	for _, cfg := range batch {
		if err := f.Space.Validate(cfg); err != nil {
			t.Fatal(err)
		}
		c.Observe(cfg, f.Eval(cfg))
	}
	if c.Generation() != 1 {
		t.Fatalf("generation = %d after full batch", c.Generation())
	}
}

func TestCMAESOverSuggestDoesNotStall(t *testing.T) {
	f := testfunc.Sphere(2)
	c := New(f.Space, rand.New(rand.NewSource(6)))
	// Suggest more than lambda without observing: must not panic or stall.
	for i := 0; i < c.Lambda()+5; i++ {
		if _, err := c.Suggest(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCMAESForeignObservations(t *testing.T) {
	f := testfunc.Sphere(2)
	c := New(f.Space, rand.New(rand.NewSource(7)))
	rng := rand.New(rand.NewSource(8))
	// Warm-start observations that were never suggested.
	for i := 0; i < 5; i++ {
		cfg := f.Space.Sample(rng)
		if err := c.Observe(cfg, f.Eval(cfg)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Best(); !ok {
		t.Fatal("incumbent not tracked for foreign observations")
	}
	// Normal operation still works.
	if _, _, err := optimizer.Run(c, f.Eval, 100); err != nil {
		t.Fatal(err)
	}
}

func TestCMAESMixedSpaceDecodes(t *testing.T) {
	// CMA-ES on a space with categoricals: still functions (categoricals
	// ride the unit-cube encoding).
	sp := space.MustNew(
		space.Float("x", -5, 5),
		space.Categorical("c", "a", "b"),
	)
	f := func(cfg space.Config) float64 {
		v := cfg.Float("x") * cfg.Float("x")
		if cfg.Str("c") == "b" {
			v += 1
		}
		return v
	}
	c := New(sp, rand.New(rand.NewSource(9)))
	cfg, val, err := optimizer.Run(c, f, 200)
	if err != nil {
		t.Fatal(err)
	}
	if val > 1 || cfg.Str("c") != "a" {
		t.Fatalf("best = %v (%v)", cfg, val)
	}
}
