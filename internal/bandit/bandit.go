// Package bandit implements multi-armed bandits over discrete candidate
// configurations: ε-greedy, UCB1, and Gaussian Thompson sampling, plus the
// contextual hybrid bandit of OPPerTune (NSDI 2024): an online-grown
// decision tree over context features with an independent base bandit at
// each leaf, so different workload regimes learn different arms.
//
// Consistent with the rest of the framework, bandits minimize: Update
// reports a loss (lower is better) and Select picks the arm expected to
// have the lowest loss, modulo exploration.
package bandit

import (
	"errors"
	"math"
	"math/rand"
)

// ErrNoArms is returned when a bandit is constructed with zero arms.
var ErrNoArms = errors.New("bandit: no arms")

// Bandit is a fixed-arm, context-free bandit over arms 0..K-1.
type Bandit interface {
	// Select returns the next arm to play.
	Select(rng *rand.Rand) int
	// Update reports the observed loss for an arm.
	Update(arm int, loss float64)
	// Arms returns the number of arms.
	Arms() int
	// Name identifies the policy.
	Name() string
}

// armStat tracks per-arm running statistics.
type armStat struct {
	n    int
	mean float64
	m2   float64
}

func (a *armStat) add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

func (a *armStat) variance() float64 {
	if a.n < 2 {
		return 1 // optimistic prior
	}
	return a.m2 / float64(a.n-1)
}

// EpsilonGreedy explores uniformly with probability Epsilon and otherwise
// exploits the lowest-mean arm.
type EpsilonGreedy struct {
	// Epsilon is the exploration probability (default 0.1 via NewEpsilonGreedy).
	Epsilon float64
	stats   []armStat
}

// NewEpsilonGreedy returns an ε-greedy bandit with k arms and ε = 0.1.
func NewEpsilonGreedy(k int, epsilon float64) (*EpsilonGreedy, error) {
	if k <= 0 {
		return nil, ErrNoArms
	}
	if epsilon <= 0 {
		epsilon = 0.1
	}
	return &EpsilonGreedy{Epsilon: epsilon, stats: make([]armStat, k)}, nil
}

// Select implements Bandit.
func (b *EpsilonGreedy) Select(rng *rand.Rand) int {
	if rng.Float64() < b.Epsilon {
		return rng.Intn(len(b.stats))
	}
	best, bestMean := 0, math.Inf(1)
	for i := range b.stats {
		if b.stats[i].n == 0 {
			return i // play every arm once first
		}
		if b.stats[i].mean < bestMean {
			best, bestMean = i, b.stats[i].mean
		}
	}
	return best
}

// Update implements Bandit.
func (b *EpsilonGreedy) Update(arm int, loss float64) { b.stats[arm].add(loss) }

// Arms implements Bandit.
func (b *EpsilonGreedy) Arms() int { return len(b.stats) }

// Name implements Bandit.
func (b *EpsilonGreedy) Name() string { return "epsilon-greedy" }

// UCB1 plays the arm minimizing mean - c*sqrt(2 ln N / n_i), the
// minimization form of the classic optimistic index policy.
type UCB1 struct {
	// C scales the confidence width (default 1).
	C     float64
	stats []armStat
	total int
}

// NewUCB1 returns a UCB1 bandit with k arms.
func NewUCB1(k int, c float64) (*UCB1, error) {
	if k <= 0 {
		return nil, ErrNoArms
	}
	if c <= 0 {
		c = 1
	}
	return &UCB1{C: c, stats: make([]armStat, k)}, nil
}

// Select implements Bandit.
func (b *UCB1) Select(rng *rand.Rand) int {
	best, bestIdx := math.Inf(1), 0
	for i := range b.stats {
		if b.stats[i].n == 0 {
			return i
		}
		bonus := b.C * math.Sqrt(2*math.Log(float64(b.total))/float64(b.stats[i].n))
		idx := b.stats[i].mean - bonus
		if idx < best {
			best, bestIdx = idx, i
		}
	}
	return bestIdx
}

// Update implements Bandit.
func (b *UCB1) Update(arm int, loss float64) {
	b.stats[arm].add(loss)
	b.total++
}

// Arms implements Bandit.
func (b *UCB1) Arms() int { return len(b.stats) }

// Name implements Bandit.
func (b *UCB1) Name() string { return "ucb1" }

// Thompson is Gaussian Thompson sampling: each Select draws a posterior
// mean sample per arm and plays the minimum.
type Thompson struct {
	stats []armStat
}

// NewThompson returns a Thompson-sampling bandit with k arms.
func NewThompson(k int) (*Thompson, error) {
	if k <= 0 {
		return nil, ErrNoArms
	}
	return &Thompson{stats: make([]armStat, k)}, nil
}

// Select implements Bandit.
func (b *Thompson) Select(rng *rand.Rand) int {
	best, bestIdx := math.Inf(1), 0
	for i := range b.stats {
		s := &b.stats[i]
		if s.n == 0 {
			return i
		}
		draw := s.mean + rng.NormFloat64()*math.Sqrt(s.variance()/float64(s.n))
		if draw < best {
			best, bestIdx = draw, i
		}
	}
	return bestIdx
}

// Update implements Bandit.
func (b *Thompson) Update(arm int, loss float64) { b.stats[arm].add(loss) }

// Arms implements Bandit.
func (b *Thompson) Arms() int { return len(b.stats) }

// Name implements Bandit.
func (b *Thompson) Name() string { return "thompson" }

// MeanLoss returns the empirical mean loss of an arm (NaN if unplayed).
// Available on all three base bandits for reporting.
func MeanLoss(b Bandit, arm int) float64 {
	switch x := b.(type) {
	case *EpsilonGreedy:
		if x.stats[arm].n == 0 {
			return math.NaN()
		}
		return x.stats[arm].mean
	case *UCB1:
		if x.stats[arm].n == 0 {
			return math.NaN()
		}
		return x.stats[arm].mean
	case *Thompson:
		if x.stats[arm].n == 0 {
			return math.NaN()
		}
		return x.stats[arm].mean
	default:
		return math.NaN()
	}
}
