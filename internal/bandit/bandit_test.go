package bandit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// playStationary runs a bandit against stationary Gaussian arm losses and
// returns the fraction of pulls of the best arm over the last half.
func playStationary(b Bandit, losses []float64, noise float64, rounds int, rng *rand.Rand) float64 {
	bestArm := 0
	for i, l := range losses {
		if l < losses[bestArm] {
			bestArm = i
		}
		_ = i
	}
	bestPulls, lateRounds := 0, 0
	for t := 0; t < rounds; t++ {
		arm := b.Select(rng)
		loss := losses[arm] + rng.NormFloat64()*noise
		b.Update(arm, loss)
		if t >= rounds/2 {
			lateRounds++
			if arm == bestArm {
				bestPulls++
			}
		}
	}
	return float64(bestPulls) / float64(lateRounds)
}

func TestConstructorsRejectZeroArms(t *testing.T) {
	if _, err := NewEpsilonGreedy(0, 0.1); !errors.Is(err, ErrNoArms) {
		t.Fatal("eps-greedy should reject 0 arms")
	}
	if _, err := NewUCB1(0, 1); !errors.Is(err, ErrNoArms) {
		t.Fatal("ucb1 should reject 0 arms")
	}
	if _, err := NewThompson(0); !errors.Is(err, ErrNoArms) {
		t.Fatal("thompson should reject 0 arms")
	}
	if _, err := NewHybrid(0); !errors.Is(err, ErrNoArms) {
		t.Fatal("hybrid should reject 0 arms")
	}
}

func TestEpsilonGreedyConverges(t *testing.T) {
	b, err := NewEpsilonGreedy(5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	frac := playStationary(b, []float64{1, 0.8, 0.2, 0.9, 1.1}, 0.1, 2000, rand.New(rand.NewSource(1)))
	if frac < 0.8 {
		t.Fatalf("best-arm fraction = %v", frac)
	}
	if b.Arms() != 5 || b.Name() != "epsilon-greedy" {
		t.Fatal("metadata")
	}
}

func TestUCB1Converges(t *testing.T) {
	b, err := NewUCB1(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	frac := playStationary(b, []float64{1, 0.8, 0.2, 0.9, 1.1}, 0.1, 2000, rand.New(rand.NewSource(2)))
	if frac < 0.85 {
		t.Fatalf("best-arm fraction = %v", frac)
	}
}

func TestThompsonConverges(t *testing.T) {
	b, err := NewThompson(5)
	if err != nil {
		t.Fatal(err)
	}
	frac := playStationary(b, []float64{1, 0.8, 0.2, 0.9, 1.1}, 0.1, 2000, rand.New(rand.NewSource(3)))
	if frac < 0.85 {
		t.Fatalf("best-arm fraction = %v", frac)
	}
}

func TestAllArmsPlayedFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, mk := range []func() Bandit{
		func() Bandit { b, _ := NewEpsilonGreedy(4, 0.01); return b },
		func() Bandit { b, _ := NewUCB1(4, 1); return b },
		func() Bandit { b, _ := NewThompson(4); return b },
	} {
		b := mk()
		seen := map[int]bool{}
		for i := 0; i < 4; i++ {
			a := b.Select(rng)
			seen[a] = true
			b.Update(a, 1)
		}
		if len(seen) != 4 {
			t.Fatalf("%s: played %d distinct arms in first 4 rounds", b.Name(), len(seen))
		}
	}
}

func TestMeanLoss(t *testing.T) {
	b, _ := NewUCB1(2, 1)
	if !math.IsNaN(MeanLoss(b, 0)) {
		t.Fatal("unplayed arm should be NaN")
	}
	b.Update(0, 2)
	b.Update(0, 4)
	if got := MeanLoss(b, 0); got != 3 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHybridLearnsPerContextArms(t *testing.T) {
	// Two regimes: ctx[0] < 0.5 prefers arm 0, ctx[0] >= 0.5 prefers arm 1.
	h, err := NewHybrid(2)
	if err != nil {
		t.Fatal(err)
	}
	h.MinSamples = 20
	rng := rand.New(rand.NewSource(5))
	loss := func(ctx []float64, arm int) float64 {
		if (ctx[0] < 0.5) == (arm == 0) {
			return 0.2 + rng.NormFloat64()*0.05
		}
		return 0.8 + rng.NormFloat64()*0.05
	}
	for t := 0; t < 600; t++ {
		ctx := []float64{rng.Float64(), rng.Float64()}
		arm := h.Select(ctx, rng)
		if err := h.Update(ctx, arm, loss(ctx, arm)); err != nil {
			break
		}
	}
	if h.Leaves() < 2 {
		t.Fatalf("tree did not split: %d leaves", h.Leaves())
	}
	if h.BestArm([]float64{0.1, 0.5}) != 0 {
		t.Fatal("low-context best arm should be 0")
	}
	if h.BestArm([]float64{0.9, 0.5}) != 1 {
		t.Fatal("high-context best arm should be 1")
	}
}

func TestHybridNoSplitWhenHomogeneous(t *testing.T) {
	h, _ := NewHybrid(2)
	h.MinSamples = 20
	rng := rand.New(rand.NewSource(6))
	// Same best arm everywhere: no reason to split.
	for t := 0; t < 400; t++ {
		ctx := []float64{rng.Float64()}
		arm := h.Select(ctx, rng)
		loss := 0.5
		if arm == 0 {
			loss = 0.2
		}
		h.Update(ctx, arm, loss+rng.NormFloat64()*0.01)
	}
	// Variance within a leaf is dominated by arm choice, not context, so
	// context splits should offer little gain. Allow at most one split.
	if h.Leaves() > 2 {
		t.Fatalf("tree over-split: %d leaves", h.Leaves())
	}
}

func TestHybridRejectsBadArm(t *testing.T) {
	h, _ := NewHybrid(2)
	if err := h.Update([]float64{0}, 5, 1); err == nil {
		t.Fatal("expected error for out-of-range arm")
	}
	if err := h.Update([]float64{0}, -1, 1); err == nil {
		t.Fatal("expected error for negative arm")
	}
}

func TestHybridBestArmEmpty(t *testing.T) {
	h, _ := NewHybrid(3)
	if h.BestArm([]float64{0}) != -1 {
		t.Fatal("BestArm with no data should be -1")
	}
	if h.Arms() != 3 || h.Name() != "hybrid-bandit" {
		t.Fatal("metadata")
	}
}

func TestHybridDepthBound(t *testing.T) {
	h, _ := NewHybrid(2)
	h.MinSamples = 8
	h.MaxDepth = 1
	rng := rand.New(rand.NewSource(7))
	for t := 0; t < 2000; t++ {
		ctx := []float64{rng.Float64(), rng.Float64()}
		arm := h.Select(ctx, rng)
		// Loss strongly context dependent to tempt splits.
		h.Update(ctx, arm, ctx[0]+ctx[1]+float64(arm))
	}
	if h.Leaves() > 2 {
		t.Fatalf("depth bound violated: %d leaves", h.Leaves())
	}
}
