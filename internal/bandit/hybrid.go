package bandit

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Hybrid is a contextual bandit in the style of OPPerTune's AutoScoper: an
// online-grown binary decision tree partitions the context space (e.g. job
// type, request rate, working-set size), and each leaf runs an independent
// base bandit over the same arm set. Contexts that behave differently end
// up in different leaves and learn different best arms; contexts that
// behave alike share statistics.
//
// Tree growth is conservative: a leaf splits on the context feature and
// median threshold that most reduces within-partition loss variance, and
// only once the leaf has seen MinSamples observations and the reduction
// exceeds SplitGain of the leaf's variance.
type Hybrid struct {
	arms int
	// NewBase constructs the per-leaf bandit (default UCB1 with c=1).
	newBase func(k int) Bandit

	// MinSamples before a leaf may split (default 30).
	MinSamples int
	// MaxDepth bounds the tree (default 4).
	MaxDepth int
	// SplitGain is the minimum relative variance reduction (default 0.2).
	SplitGain float64

	root *hnode
}

type hobs struct {
	ctx  []float64
	arm  int
	loss float64
}

type hnode struct {
	// Internal.
	feature int
	thresh  float64
	left    *hnode
	right   *hnode
	// Leaf.
	leaf  bool
	base  Bandit
	hist  []hobs
	depth int
}

// NewHybrid returns a hybrid contextual bandit with k arms and a UCB1 base
// policy at each leaf.
func NewHybrid(k int) (*Hybrid, error) {
	if k <= 0 {
		return nil, ErrNoArms
	}
	h := &Hybrid{
		arms:       k,
		MinSamples: 30,
		MaxDepth:   4,
		SplitGain:  0.2,
		newBase: func(k int) Bandit {
			b, _ := NewUCB1(k, 1)
			return b
		},
	}
	h.root = &hnode{leaf: true, base: h.newBase(k)}
	return h, nil
}

// Arms returns the number of arms.
func (h *Hybrid) Arms() int { return h.arms }

// Name identifies the policy.
func (h *Hybrid) Name() string { return "hybrid-bandit" }

// Leaves returns the current number of leaf partitions.
func (h *Hybrid) Leaves() int { return countLeaves(h.root) }

func countLeaves(n *hnode) int {
	if n.leaf {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

func (h *Hybrid) leafFor(ctx []float64) *hnode {
	n := h.root
	for !n.leaf {
		if ctx[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// Select picks an arm for the given context.
func (h *Hybrid) Select(ctx []float64, rng *rand.Rand) int {
	return h.leafFor(ctx).base.Select(rng)
}

// Update reports the loss observed for an arm under a context, then
// considers growing the tree at that leaf.
func (h *Hybrid) Update(ctx []float64, arm int, loss float64) error {
	if arm < 0 || arm >= h.arms {
		return fmt.Errorf("bandit: arm %d out of range [0, %d)", arm, h.arms)
	}
	n := h.leafFor(ctx)
	n.base.Update(arm, loss)
	n.hist = append(n.hist, hobs{ctx: append([]float64(nil), ctx...), arm: arm, loss: loss})
	h.maybeSplit(n)
	return nil
}

// maybeSplit grows the tree when a leaf's contexts clearly behave
// differently on either side of some feature threshold.
func (h *Hybrid) maybeSplit(n *hnode) {
	if len(n.hist) < h.MinSamples || n.depth >= h.MaxDepth {
		return
	}
	// The split criterion is the reduction in *within-arm* loss variance:
	// if the same arm yields different losses on either side of a context
	// threshold (a context x arm interaction), separating the contexts
	// lets each side learn its own arm. Marginal loss variance would miss
	// this — mixed arm pulls keep it high on both sides of a good split.
	parentSSE := sseByArm(n.hist, h.arms)
	if parentSSE <= 1e-12 {
		return
	}
	dims := len(n.hist[0].ctx)
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	for d := 0; d < dims; d++ {
		vals := make([]float64, len(n.hist))
		for i, o := range n.hist {
			vals[i] = o.ctx[d]
		}
		sort.Float64s(vals)
		thresh, ok := medianSplitThreshold(vals)
		if !ok {
			continue // constant feature: no separation possible
		}
		var l, r []hobs
		for _, o := range n.hist {
			if o.ctx[d] <= thresh {
				l = append(l, o)
			} else {
				r = append(r, o)
			}
		}
		if len(l) < h.MinSamples/4 || len(r) < h.MinSamples/4 {
			continue
		}
		childSSE := sseByArm(l, h.arms) + sseByArm(r, h.arms)
		gain := (parentSSE - childSSE) / parentSSE
		if gain > bestGain {
			bestGain, bestFeat, bestThresh = gain, d, thresh
		}
	}
	if bestFeat < 0 || bestGain < h.SplitGain {
		return
	}
	left := &hnode{leaf: true, base: h.newBase(h.arms), depth: n.depth + 1}
	right := &hnode{leaf: true, base: h.newBase(h.arms), depth: n.depth + 1}
	for _, o := range n.hist {
		var child *hnode
		if o.ctx[bestFeat] <= bestThresh {
			child = left
		} else {
			child = right
		}
		child.base.Update(o.arm, o.loss)
		child.hist = append(child.hist, o)
	}
	n.leaf = false
	n.feature = bestFeat
	n.thresh = bestThresh
	n.left = left
	n.right = right
	n.base = nil
	n.hist = nil
}

// medianSplitThreshold returns the midpoint of the distinct adjacent pair
// nearest the median of the sorted values, so that `v <= thresh` yields a
// genuine two-sided split even for binary or few-valued features. ok is
// false when all values are equal.
func medianSplitThreshold(sorted []float64) (thresh float64, ok bool) {
	n := len(sorted)
	mid := n / 2
	for off := 0; off < n; off++ {
		for _, i := range []int{mid - off, mid + off} {
			if i >= 1 && i < n && sorted[i-1] != sorted[i] {
				return (sorted[i-1] + sorted[i]) / 2, true
			}
		}
	}
	return 0, false
}

// sseByArm sums, over arms, the squared deviations of each arm's losses
// around that arm's mean — the within-arm sum of squared errors.
func sseByArm(obs []hobs, arms int) float64 {
	sums := make([]float64, arms)
	counts := make([]int, arms)
	for _, o := range obs {
		sums[o.arm] += o.loss
		counts[o.arm]++
	}
	sse := 0.0
	for _, o := range obs {
		mean := sums[o.arm] / float64(counts[o.arm])
		sse += (o.loss - mean) * (o.loss - mean)
	}
	return sse
}

// BestArm returns the arm with the lowest mean loss in the leaf covering
// ctx, or -1 when the leaf has no data yet.
func (h *Hybrid) BestArm(ctx []float64) int {
	n := h.leafFor(ctx)
	best, bestMean := -1, math.Inf(1)
	for a := 0; a < h.arms; a++ {
		m := MeanLoss(n.base, a)
		if !math.IsNaN(m) && m < bestMean {
			best, bestMean = a, m
		}
	}
	return best
}
