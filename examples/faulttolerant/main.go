// Fault-tolerant tuning: the tutorial's systems-challenges half (slides
// 65-75) says real trials crash, hang, straggle, and lie. This demo tunes
// the simulated DBMS through a fault injector (transient failures, hangs,
// stragglers, TUNA-style flaky machines) hardened with retries, per-trial
// deadlines, and crash-region quarantine — then kills a checkpointed run
// mid-flight and resumes it without re-running completed trials.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"autotune"
	"autotune/internal/cloud"
	"autotune/internal/resilience"
	"autotune/internal/simsys"
	"autotune/internal/trial"
	"autotune/internal/workload"
)

func main() {
	wl := workload.TPCC()
	newEnv := func() *trial.SystemEnv {
		return &trial.SystemEnv{Sys: simsys.NewDBMS(simsys.MediumVM()), WL: wl}
	}
	opts := trial.Options{Budget: 40}

	// ---- 1. Baseline: a fault-free run. -------------------------------
	cleanOpt, _ := autotune.NewOptimizer("smac", newEnv().Space(), 1)
	cleanRep, err := trial.Run(cleanOpt, newEnv(), opts)
	check(err)
	fmt.Printf("fault-free:     best %7.3f ms   %2d crashes   cost %6.0fs\n",
		cleanRep.BestValue, cleanRep.Crashes, cleanRep.TotalCostSeconds)

	// ---- 2. The same tuning under heavy fault injection. --------------
	// A small fleet where 1 in 4 machines is flaky supplies per-VM
	// faults; flat rates add transient errors, hangs, and stragglers.
	hosts := cloud.SampleHosts(8, cloud.Options{FlakyProb: 0.25}, rand.New(rand.NewSource(7)))
	breaker := resilience.NewBreaker()
	injector := resilience.NewInjector(newEnv(), resilience.InjectorOptions{
		TransientProb: 0.25,
		HangProb:      0.05,
		HangFor:       20 * time.Millisecond,
		StragglerProb: 0.10,
		Hosts:         hosts,
		Breaker:       breaker,
		Seed:          7,
	})
	hardened := resilience.Wrap(injector, resilience.Options{
		Retries:      6,
		Backoff:      resilience.Backoff{Base: time.Millisecond},
		TrialTimeout: 100 * time.Millisecond,
		Breaker:      breaker,
		Seed:         7,
	})
	faultyOpt, _ := autotune.NewOptimizer("smac", hardened.Space(), 1)
	faultyRep, err := trial.Run(faultyOpt, hardened, trial.Options{
		Budget: opts.Budget, DegradeAfterTimeouts: 3,
	})
	check(err)
	is, hs := injector.Stats(), hardened.Stats()
	fmt.Printf("fault-injected: best %7.3f ms   %2d crashes   cost %6.0fs\n",
		faultyRep.BestValue, faultyRep.Crashes, faultyRep.TotalCostSeconds)
	fmt.Printf("  injected: %d transients, %d hangs, %d stragglers, %d host faults (%d flaky VMs)\n",
		is.Transients, is.Hangs, is.Stragglers, is.HostFaults, flaky(hosts))
	fmt.Printf("  absorbed: %d retries over %d attempts, %d timeouts, %d quarantined, %d breaker trips\n",
		hs.Retries, hs.Attempts, hs.Timeouts, hs.Quarantined, breaker.Trips())
	fmt.Printf("  quality gap vs fault-free: %+.1f%%\n\n",
		100*(faultyRep.BestValue-cleanRep.BestValue)/cleanRep.BestValue)

	// ---- 3. Kill a checkpointed run, then resume it. ------------------
	ckpt := filepath.Join(os.TempDir(), "autotune-faulttolerant-ckpt.json")
	defer os.Remove(ckpt)
	ckptOpts := trial.Options{Budget: opts.Budget, Checkpoint: ckpt, CheckpointEvery: 1}

	killable := newCountingEnv(newEnv())
	ctx, cancel := context.WithCancel(context.Background())
	killable.after(15, cancel) // "kill -9" after 15 trials
	opt1, _ := autotune.NewOptimizer("smac", killable.Space(), 1)
	_, err = trial.RunContext(ctx, opt1, killable, ckptOpts)
	fmt.Printf("killed mid-run after %d trials: %v\n", killable.runs, err)

	// A fresh process: new optimizer, same checkpoint.
	ranBefore := killable.runs
	opt2, _ := autotune.NewOptimizer("smac", killable.Space(), 2)
	rep, err := trial.Resume(opt2, killable, ckptOpts)
	check(err)
	fmt.Printf("resumed: %d trials replayed from checkpoint, %d run fresh, best %7.3f ms\n",
		rep.Resumed, killable.runs-ranBefore, rep.BestValue)
	if killable.runs-ranBefore != opts.Budget-rep.Resumed {
		panic("resume re-ran completed trials")
	}
}

// countingEnv counts trials and can cancel a context after n of them.
type countingEnv struct {
	*trial.SystemEnv
	runs    int
	killAt  int
	killFun context.CancelFunc
}

func newCountingEnv(inner *trial.SystemEnv) *countingEnv {
	return &countingEnv{SystemEnv: inner}
}

func (e *countingEnv) after(n int, cancel context.CancelFunc) {
	e.killAt, e.killFun = n, cancel
}

func (e *countingEnv) Run(ctx context.Context, cfg autotune.Config, fid float64) (trial.Result, error) {
	e.runs++
	if e.killFun != nil && e.runs >= e.killAt {
		e.killFun()
	}
	return e.SystemEnv.Run(ctx, cfg, fid)
}

func flaky(hosts []cloud.HostProfile) int {
	n := 0
	for _, h := range hosts {
		if h.Flaky {
			n++
		}
	}
	return n
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulttolerant:", err)
		os.Exit(1)
	}
}
