// Online tuning under a workload shift (slides 76-84): a live simulated
// DBMS serves a read-mostly workload that turns write-heavy halfway
// through. A contextual hybrid-bandit agent — its arms are the default
// config plus rule-derived presets for each regime — adapts within a few
// steps of the shift, while guardrails (regression rollback) bound the
// damage of bad exploration.
package main

import (
	"fmt"
	"math/rand"

	"autotune"
	"autotune/internal/heuristic"
	"autotune/internal/simsys"
	"autotune/internal/workload"
)

// liveDB is the OnlineSystem: Apply installs knobs, Measure samples the
// current latency and exposes workload features as context.
type liveDB struct {
	db     *simsys.DBMS
	cur    autotune.Config
	wl     workload.Descriptor
	step   int
	shift  int
	after  workload.Descriptor
	rng    *rand.Rand
	shifts int
}

func (l *liveDB) Space() *autotune.Space { return l.db.Space() }

func (l *liveDB) Apply(cfg autotune.Config) error {
	l.cur = cfg.Clone()
	return nil
}

func (l *liveDB) Measure() (float64, []float64) {
	l.step++
	wl := l.wl
	if l.step >= l.shift {
		wl = l.after
	}
	m, err := l.db.Run(l.cur, wl, 0.2, l.rng) // short online probes
	loss := 1e4
	if err == nil {
		loss = m.LatencyMS
	}
	return loss, []float64{wl.ReadRatio, wl.WriteFraction()}
}

func main() {
	db := simsys.NewDBMS(simsys.MediumVM())
	db.NoiseSigma = 0.02
	before, after := workload.YCSBB(), workload.YCSBA()
	sys := &liveDB{
		db: db, wl: before, after: after,
		shift: 150, rng: rand.New(rand.NewSource(3)),
	}

	// Arms: shipped defaults + a rule-derived preset per regime.
	arms := []autotune.Config{
		db.Space().Default(),
		heuristic.DBMSConfig(db, before),
		heuristic.DBMSConfig(db, after),
	}
	policy, err := autotune.NewBanditPolicy(arms)
	if err != nil {
		panic(err)
	}
	agent, err := autotune.NewAgent(sys, policy,
		autotune.Guardrails{MaxRegression: 0.3, Patience: 2}, 3)
	if err != nil {
		panic(err)
	}

	const steps = 300
	var window []float64
	fmt.Println("step   avg loss (last 25)   note")
	for i := 1; i <= steps; i++ {
		rep, err := agent.Step()
		if err != nil {
			panic(err)
		}
		window = append(window, rep.Loss)
		if len(window) > 25 {
			window = window[1:]
		}
		if i%25 == 0 {
			note := ""
			if i == 150 {
				note = "<- workload shifts to write-heavy here"
			}
			sum := 0.0
			for _, v := range window {
				sum += v
			}
			fmt.Printf("%4d   %18.3f   %s\n", i, sum/float64(len(window)), note)
		}
	}
	inc, loss := agent.Incumbent()
	fmt.Printf("\nfinal incumbent loss: %.3f ms, guardrail rollbacks: %d\n", loss, agent.Rollbacks())
	fmt.Printf("final flush_method=%v buffer_pool_mb=%v\n",
		inc.Str("flush_method"), inc.Int("buffer_pool_mb"))
}
