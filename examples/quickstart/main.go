// Quickstart: minimize the Branin function with Bayesian optimization in
// ~30 lines using the public autotune API. Branin is the "hello world" of
// black-box optimization: 2-D, smooth, three global minima at 0.397887.
package main

import (
	"fmt"
	"math"

	"autotune"
)

func main() {
	// 1. Declare the configuration space.
	sp := autotune.MustSpace(
		autotune.Float("x1", -5, 10),
		autotune.Float("x2", 0, 15),
	)

	// 2. The black-box objective (minimized).
	branin := func(c autotune.Config) float64 {
		x1, x2 := c.Float("x1"), c.Float("x2")
		b := 5.1 / (4 * math.Pi * math.Pi)
		cc := 5 / math.Pi
		t := 1 / (8 * math.Pi)
		term := x2 - b*x1*x1 + cc*x1 - 6
		return term*term + 10*(1-t)*math.Cos(x1) + 10
	}

	// 3. Pick an optimizer and run the suggest/observe loop.
	opt, err := autotune.NewOptimizer("bo", sp, 42)
	if err != nil {
		panic(err)
	}
	best, val, err := autotune.Minimize(opt, branin, 40)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best after 40 trials: f(%.4f, %.4f) = %.5f (optimum 0.39789)\n",
		best.Float("x1"), best.Float("x2"), val)
}
