// DBMS knob tuning on a TPC-C-like workload: the 21-knob simulated
// database with conditional parameters (jit_above_cost is only active when
// jit = on), a declared memory constraint (the OOM cliff from slide 60),
// a rule-based pgtune-style baseline, and SMAC — the tree-based optimizer
// the tutorial recommends for hybrid spaces — on top.
package main

import (
	"fmt"
	"sort"

	"autotune"
	"autotune/internal/heuristic"
	"autotune/internal/simsys"
	"autotune/internal/trial"
	"autotune/internal/workload"
)

func main() {
	db := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()

	// Declare the crash boundary as a constraint so the tuner samples
	// inside the feasible region instead of OOM-ing into it.
	sp := db.Space().WithConstraints(db.MemoryConstraint(wl.Clients))
	env := &trial.SystemEnv{Sys: constrained{db, sp}, WL: wl}

	show := func(name string, cfg autotune.Config) float64 {
		m, err := db.Run(cfg, wl, 1, nil)
		if err != nil {
			fmt.Printf("%-22s crashed: %v\n", name, err)
			return 0
		}
		fmt.Printf("%-22s latency %7.3f ms   throughput %8.0f ops/s\n",
			name, m.LatencyMS, m.ThroughputOps)
		return m.LatencyMS
	}

	defLat := show("shipped defaults", db.Space().Default())
	ruleCfg := heuristic.DBMSConfig(db, wl)
	show("pgtune-style rules", ruleCfg)

	opt, err := autotune.NewOptimizer("smac", sp, 11)
	if err != nil {
		panic(err)
	}
	rep, err := autotune.Tune(opt, env, autotune.TuneOptions{Budget: 60})
	if err != nil {
		panic(err)
	}
	tunedLat := show("smac (60 trials)", rep.BestConfig)

	fmt.Printf("\ncrashed trials: %d (constraint keeps sampling feasible)\n", rep.Crashes)
	fmt.Printf("tuned vs default: %.1fx lower latency\n\n", defLat/tunedLat)

	fmt.Println("knobs SMAC changed most (vs defaults):")
	def := db.Space().Default()
	var names []string
	for k := range rep.BestConfig {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if fmt.Sprint(def[k]) != fmt.Sprint(rep.BestConfig[k]) {
			fmt.Printf("  %-20s %v -> %v\n", k, def[k], rep.BestConfig[k])
		}
	}
}

// constrained overrides the system's space with the constraint-carrying
// one so the environment hands it to the optimizer.
type constrained struct {
	*simsys.DBMS
	sp *autotune.Space
}

func (c constrained) Space() *autotune.Space { return c.sp }
