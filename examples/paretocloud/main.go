// Multi-objective cloud tuning (slide 58): a Spark-like batch job where
// more executors finish faster but cost more. There is no single best
// configuration — ParEGO traces the runtime-vs-cost Pareto frontier, from
// which an operator picks by budget.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"autotune"
	"autotune/internal/moo"
	"autotune/internal/simsys"
	"autotune/internal/workload"
)

func main() {
	spark := simsys.NewSpark(simsys.MediumVM())
	spark.NoiseSigma = 0
	wl := workload.TPCH(10)

	objectives := func(c autotune.Config) []float64 {
		m, err := spark.Run(c, wl, 1, nil)
		if err != nil {
			return []float64{1e6, 1e6}
		}
		runtimeSec := m.LatencyMS / 1000
		jobCost := m.CostUSDPerHour * runtimeSec / 3600
		return []float64{runtimeSec, jobCost}
	}

	parego, err := moo.NewParEGO(spark.Space(), 2, rand.New(rand.NewSource(5)))
	if err != nil {
		panic(err)
	}
	if err := moo.RunMulti(parego, objectives, 80); err != nil {
		panic(err)
	}

	front := parego.Front()
	sort.Slice(front, func(i, j int) bool { return front[i].Objectives[0] < front[j].Objectives[0] })
	fmt.Println("Pareto frontier after 80 evaluations (runtime vs job cost):")
	fmt.Printf("%10s %12s %10s %10s\n", "runtime(s)", "cost($)", "executors", "partitions")
	for _, e := range front {
		fmt.Printf("%10.1f %12.4f %10d %10d\n",
			e.Objectives[0], e.Objectives[1],
			e.Config.Int("executors"), e.Config.Int("shuffle_partitions"))
	}

	var objs [][]float64
	for _, e := range front {
		objs = append(objs, e.Objectives)
	}
	fmt.Printf("\nfront size: %d, hypervolume vs (200s, $0.05): %.4f\n",
		len(front), moo.Hypervolume2D(objs, [2]float64{200, 0.05}))
	fmt.Println("\nEvery row is optimal for some budget: faster points cost more,")
	fmt.Println("cheaper points run longer — the slide's 'no one config to rule them all'.")
}
