// Manual mining — the DB-BERT / GPTuner idea (slides 63-64) without the
// LLM: extract knob importance and documented value ranges from the
// database manual, seed a configuration from the advice, and tune only the
// manual's top knobs. Compare against cold-start tuning over all 21 knobs.
package main

import (
	"fmt"

	"autotune"
	"autotune/internal/importance"
	"autotune/internal/manual"
	"autotune/internal/simsys"
	"autotune/internal/workload"
)

func main() {
	db := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	latency := func(c autotune.Config) float64 {
		m, err := db.Run(c, wl, 1, nil)
		if err != nil {
			return 1e6
		}
		return m.LatencyMS
	}

	// 1. "Read the manual": extract hints from the built-in corpus.
	hints := manual.Extract(manual.DBMSCorpus())
	fmt.Println("manual-derived knob ranking (top 8):")
	for i, h := range hints[:8] {
		fmt.Printf("  %d. %-18s score %.1f\n", i+1, h.Knob, h.Score)
	}

	// 2. Seed a config from the documented advice (50-75% RAM buffer
	//    pool, O_DIRECT, ...).
	seeded := manual.ApplyHints(db, hints)
	fmt.Printf("\nshipped defaults:   %8.3f ms\n", latency(db.Space().Default()))
	fmt.Printf("documented config:  %8.3f ms (before any tuning)\n", latency(seeded))

	// 3. Tune only the manual's top-8 knobs, starting from the seeded
	//    config, with a small budget.
	sub, complete, err := importance.Narrow(db.Space(), manual.TopKnobs(hints, 8), seeded)
	if err != nil {
		panic(err)
	}
	opt, err := autotune.NewOptimizer("bo", sub, 9)
	if err != nil {
		panic(err)
	}
	_, informed, err := autotune.Minimize(opt, func(c autotune.Config) float64 {
		return latency(complete(c))
	}, 25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("manual-informed BO: %8.3f ms (25 trials over 8 knobs)\n", informed)

	// 4. Cold start over the full space for comparison.
	cold, err := autotune.NewOptimizer("bo", db.Space(), 9)
	if err != nil {
		panic(err)
	}
	_, coldBest, err := autotune.Minimize(cold, latency, 25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cold full-space BO: %8.3f ms (25 trials over 21 knobs)\n", coldBest)
	fmt.Println("\nThe manual's emphasis keywords point straight at the knobs that matter,")
	fmt.Println("so the informed tuner spends its tiny budget where it counts.")
}
