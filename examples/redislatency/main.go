// Redis tail-latency tuning — the tutorial's running example (slides
// 26-48): minimize the P95 latency of a (simulated) Redis server by tuning
// the kernel knob sched_migration_cost_ns plus a few server knobs, and
// compare the three strategies the slides walk through: grid search,
// random search, and Bayesian optimization.
package main

import (
	"fmt"
	"math/rand"

	"autotune"
	"autotune/internal/optimizer"
	"autotune/internal/simsys"
	"autotune/internal/workload"
)

func main() {
	redis := simsys.NewRedis(simsys.MediumVM())
	redis.NoiseSigma = 0.01 // a little measurement noise, like real life
	wl := workload.YCSBB()  // read-mostly cache traffic
	rng := rand.New(rand.NewSource(7))

	p95 := func(c autotune.Config) float64 {
		m, err := redis.Run(c, wl, 1, rng)
		if err != nil {
			return 1e6
		}
		return m.P95MS
	}
	budget := 30

	defP95 := p95(redis.Space().Default())
	fmt.Printf("default config: P95 = %.3f ms\n\n", defP95)
	fmt.Printf("%-10s %12s %12s\n", "strategy", "P95 (ms)", "vs default")

	show := func(name string, best float64) {
		fmt.Printf("%-10s %12.3f %11.1f%%\n", name, best, 100*(defP95-best)/defP95)
	}

	grid := optimizer.NewGrid(redis.Space(), budget)
	_, gBest, err := optimizer.Run(grid, p95, budget)
	must(err)
	show("grid", gBest)

	random, err := autotune.NewOptimizer("random", redis.Space(), 7)
	must(err)
	_, rBest, err := autotune.Minimize(random, p95, budget)
	must(err)
	show("random", rBest)

	bayes, err := autotune.NewOptimizer("bo", redis.Space(), 7)
	must(err)
	bBest, bVal, err := autotune.Minimize(bayes, p95, budget)
	must(err)
	show("bo", bVal)

	fmt.Printf("\nBO's pick: sched_migration_cost_ns = %d, io_threads = %d, tcp_nodelay = %v\n",
		bBest.Int("sched_migration_cost_ns"), bBest.Int("io_threads"), bBest.Bool("tcp_nodelay"))
	fmt.Println("\nThe tutorial reports a 68% P95 reduction from kernel tuning — the")
	fmt.Println("same shape the model-guided search recovers here in 30 trials.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
