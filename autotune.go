// Package autotune is a generalized systems-autotuning framework in pure
// Go: the reproduction companion to the SIGMOD 2025 tutorial "Autotuning
// Systems: Techniques, Challenges, and Opportunities" (Kroth, Matusevych,
// Zhu — Microsoft Gray Systems Lab).
//
// The package re-exports the stable public surface of the internal
// packages:
//
//   - configuration spaces: typed knobs with bounds, log scale,
//     categoricals, conditionals, and constraints (internal/space);
//   - optimizers: random/grid search, simulated annealing, coordinate
//     descent, GP-based Bayesian optimization, SMAC, CMA-ES, PSO, and a
//     genetic algorithm, all behind one Suggest/Observe interface;
//   - the offline tuning loop with crash handling, early abort, fidelity
//     and parallel trials (internal/trial), backed by an asynchronous
//     scheduler with straggler hedging, panic isolation, and a crash-safe
//     write-ahead trial journal (internal/sched);
//   - an online tuning agent with guardrails and pluggable policies
//     (Q-learning knob deltas, contextual hybrid bandits);
//   - simulated tunable systems — an analytic DBMS, a Redis/kernel model,
//     a Spark-like job — plus a real in-memory KV store and workload
//     generators for end-to-end experiments.
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	sp := autotune.MustSpace(
//	    autotune.Float("x", -5, 10),
//	    autotune.Float("y", 0, 15),
//	)
//	opt, _ := autotune.NewOptimizer("bo", sp, 42)
//	best, val, _ := autotune.Minimize(opt, objective, 40)
package autotune

import (
	"context"
	"math/rand"

	"autotune/internal/bo"
	"autotune/internal/cloud"
	"autotune/internal/core"
	"autotune/internal/experiments"
	"autotune/internal/optimizer"
	"autotune/internal/resilience"
	"autotune/internal/sched"
	"autotune/internal/server"
	"autotune/internal/space"
	"autotune/internal/trial"
)

// Core configuration-space types.
type (
	// Space is a typed configuration space.
	Space = space.Space
	// Param is one tunable parameter.
	Param = space.Param
	// Config assigns values to parameter names.
	Config = space.Config
	// Constraint is a named cross-parameter validity predicate.
	Constraint = space.Constraint
)

// Optimization types.
type (
	// Optimizer is the Suggest/Observe black-box optimization contract.
	Optimizer = optimizer.Optimizer
	// Observation is one evaluated configuration.
	Observation = optimizer.Observation
	// BO is the Gaussian-process Bayesian optimizer, exposed concretely so
	// callers can pin a surrogate tier or read maintenance stats.
	BO = bo.BO
	// BOOptions configures NewBO (kernel, acquisition, surrogate tier
	// policy and switch thresholds, worker counts).
	BOOptions = bo.Options
	// SurrogatePolicy selects BO's surrogate tier: SurrogateAuto switches
	// dense → sparse → forest as history deepens; the other values pin one
	// tier.
	SurrogatePolicy = bo.SurrogatePolicy
	// SurrogateStats reports BO's active tier, every tier switch, and
	// per-tier maintenance counters.
	SurrogateStats = bo.SurrogateStats
)

// Surrogate tier policies for BOOptions.Surrogate / (*BO).SetSurrogate.
const (
	SurrogateAuto   = bo.SurrogateAuto
	SurrogateDense  = bo.SurrogateDense
	SurrogateSparse = bo.SurrogateSparse
	SurrogateLocal  = bo.SurrogateLocal
	SurrogateForest = bo.SurrogateForest
)

// NewBO constructs the GP Bayesian optimizer with explicit options and a
// deterministic seed — the typed alternative to NewOptimizer("bo", ...)
// when the surrogate tier, switch thresholds, or parallelism need tuning.
func NewBO(s *Space, seed int64, opts BOOptions) *BO {
	return bo.NewWith(s, rand.New(rand.NewSource(seed)), opts)
}

// ParseSurrogate maps a tier name ("auto", "dense", "sparse", "local",
// "forest") onto its SurrogatePolicy; unknown names return
// (SurrogateAuto, false).
func ParseSurrogate(name string) (SurrogatePolicy, bool) {
	return bo.ParseSurrogate(name)
}

// Tuning-loop types.
type (
	// Environment benchmarks configurations.
	Environment = trial.Environment
	// FuncEnv adapts a plain objective function to Environment.
	FuncEnv = trial.FuncEnv
	// TuneOptions configures a tuning run.
	TuneOptions = trial.Options
	// Report is a completed tuning session.
	Report = trial.Report
	// Result is one benchmark measurement.
	Result = trial.Result
	// TrialRecord is one completed trial inside a Report or journal.
	TrialRecord = trial.TrialRecord
	// JournalSink receives every completed trial before the optimizer
	// observes it (TuneOptions.Sink) — the write-ahead contract.
	JournalSink = trial.JournalSink
	// StudyJournal is a JournalSink backed by one study inside the
	// crash-safe segmented study store (TuneOptions.Store).
	StudyJournal = trial.StudyJournal
)

// Scheduler types (internal/sched): the asynchronous trial pool behind
// TuneOptions.Scheduler — bounded workers mapped onto host slots, panic
// isolation, straggler hedging, quarantine-aware placement, and graceful
// drain, on a deterministic virtual clock by default.
type (
	// SchedulerOptions configures the asynchronous trial pool
	// (TuneOptions.Scheduler).
	SchedulerOptions = sched.Options
	// HostProfile describes one host slot's speed multiplier and
	// flakiness (SchedulerOptions.Hosts).
	HostProfile = cloud.HostProfile
)

// ErrPanic marks trials (or online-agent steps) whose user code panicked;
// the panic is recovered at the trial boundary, scored as a crash, and
// its value and stack ride on the error.
var ErrPanic = trial.ErrPanic

// ReadTrialJournal loads the intact records from a write-ahead trial
// journal (TuneOptions.Journal), sorted by trial ID with duplicates
// dropped. A missing file is an empty journal; a torn final line — the
// mark of a crash mid-append — is skipped, while a corrupt *interior*
// record errors. A directory path is read transparently as a segmented
// study store, merged across studies.
var ReadTrialJournal = trial.ReadJournal

// OpenStudyJournal opens (creating if needed) the crash-safe segmented
// study store at dir and returns a sink journaling trials into the named
// study — the programmatic form of TuneOptions.Store/Study.
var OpenStudyJournal = trial.OpenStudyJournal

// ReadStudyTrials loads one study's trial records from the segmented
// store at dir, sorted by ID with duplicates dropped. A missing
// directory is an empty study.
var ReadStudyTrials = trial.ReadStudyJournal

// MigrateTrialJournal moves a v0 single-file journal into the segmented
// study store at dir under the named study, removing the v0 file once
// every record is durable in the store. Re-running a partial migration
// is safe.
var MigrateTrialJournal = trial.MigrateJournal

// Resilient-execution types (internal/resilience): fault-tolerant trial
// execution with retries, deadlines, quarantine, and fault injection.
type (
	// ResilienceOptions configures Harden (retries, backoff, deadlines,
	// circuit breaking).
	ResilienceOptions = resilience.Options
	// Backoff computes exponential retry backoff with jitter.
	Backoff = resilience.Backoff
	// Breaker quarantines crashing config regions and flaky hosts.
	Breaker = resilience.Breaker
	// FaultInjectorOptions configures InjectFaults.
	FaultInjectorOptions = resilience.InjectorOptions
)

// ErrTransient marks retryable trial failures; return an error wrapping
// it from an Environment to opt into Harden's retry path.
var ErrTransient = resilience.ErrTransient

// Online-tuning types.
type (
	// OnlineSystem is a live system an Agent can steer.
	OnlineSystem = core.OnlineSystem
	// Agent is the online control loop with guardrails.
	Agent = core.Agent
	// Guardrails bounds online exploration and triggers rollback.
	Guardrails = core.Guardrails
	// Policy proposes configurations for the online loop.
	Policy = core.Policy
)

// ExperimentTable is one regenerated figure/table from the tutorial.
type ExperimentTable = experiments.Table

// Space construction.
var (
	// NewSpace validates parameters and builds a Space.
	NewSpace = space.New
	// MustSpace is NewSpace but panics on error (static literals).
	MustSpace = space.MustNew
	// Float declares a continuous parameter on [min, max].
	Float = space.Float
	// Int declares an integer parameter on [min, max].
	Int = space.Int
	// Categorical declares a categorical parameter.
	Categorical = space.Categorical
	// Bool declares a boolean parameter.
	Bool = space.Bool
)

// ErrExhausted is returned by finite strategies once no configurations
// remain.
var ErrExhausted = optimizer.ErrExhausted

// OptimizerNames lists the optimizers NewOptimizer accepts.
func OptimizerNames() []string { return core.OptimizerNames() }

// NewOptimizer constructs an optimizer by name ("random", "grid",
// "anneal", "coordinate", "bo", "bo-pi", "bo-lcb", "smac", "cmaes", "pso",
// "genetic") with a deterministic seed.
func NewOptimizer(name string, s *Space, seed int64) (Optimizer, error) {
	return core.NewOptimizer(name, s, rand.New(rand.NewSource(seed)))
}

// Minimize drives an optimizer against f for `budget` evaluations and
// returns the best configuration and value found.
func Minimize(o Optimizer, f func(Config) float64, budget int) (Config, float64, error) {
	return optimizer.Run(o, f, budget)
}

// Tune runs the full-featured tuning loop (crash handling, parallelism,
// early abort, fidelity, checkpointing) of an optimizer against an
// environment.
func Tune(o Optimizer, env Environment, opts TuneOptions) (Report, error) {
	return trial.Run(o, env, opts)
}

// TuneContext is Tune with cancellation: the loop stops at the next batch
// boundary once ctx is cancelled, checkpointing progress when
// TuneOptions.Checkpoint is set.
func TuneContext(ctx context.Context, o Optimizer, env Environment, opts TuneOptions) (Report, error) {
	return trial.RunContext(ctx, o, env, opts)
}

// ResumeTune continues a killed tuning session from
// TuneOptions.Checkpoint and/or the write-ahead journal at
// TuneOptions.Journal: recorded trials are replayed into the optimizer
// without re-running them, then the loop finishes the remaining budget.
// The journal is the finer-grained source — it keeps trials finished
// after the last checkpoint, so a kill mid-batch loses nothing.
func ResumeTune(o Optimizer, env Environment, opts TuneOptions) (Report, error) {
	return trial.Resume(o, env, opts)
}

// Harden wraps an environment with fault-tolerant execution: retry with
// exponential backoff + jitter for transient failures, per-trial
// deadlines, and circuit breaking for crash regions.
func Harden(env Environment, opts ResilienceOptions) Environment {
	return resilience.Wrap(env, opts)
}

// InjectFaults wraps an environment with configurable fault injection
// (transient errors, hangs, stragglers, corrupted results, flaky hosts)
// for testing tuning setups against realistic failure modes.
func InjectFaults(env Environment, opts FaultInjectorOptions) Environment {
	return resilience.NewInjector(env, opts)
}

// NewBreaker returns a circuit breaker with default thresholds for use in
// ResilienceOptions and FaultInjectorOptions.
func NewBreaker() *Breaker { return resilience.NewBreaker() }

// NewAgent builds an online tuning agent around a live system and policy.
func NewAgent(sys OnlineSystem, policy Policy, guard Guardrails, seed int64) (*Agent, error) {
	return core.NewAgent(sys, policy, guard, rand.New(rand.NewSource(seed)))
}

// NewRandomWalkPolicy returns the baseline online policy.
func NewRandomWalkPolicy(s *Space) Policy { return core.NewRandomWalkPolicy(s) }

// NewDeltaPolicy returns a Q-learning knob-delta policy over the named
// numeric knobs (all numeric knobs when names is empty).
func NewDeltaPolicy(s *Space, names []string) (Policy, error) {
	return core.NewDeltaPolicy(s, names)
}

// NewBanditPolicy returns a contextual hybrid-bandit policy over candidate
// configurations.
func NewBanditPolicy(arms []Config) (Policy, error) { return core.NewBanditPolicy(arms) }

// NewActorCriticPolicy returns the neural actor-critic knob-delta policy
// (QTune/CDBTune-style); stateDim must match the context length the online
// system reports.
func NewActorCriticPolicy(s *Space, names []string, stateDim int, seed int64) (Policy, error) {
	return core.NewActorCriticPolicy(s, names, stateDim, seed)
}

// NewSafeBOPolicy returns the OnlineTune-style safe-exploration policy: a
// GP surrogate gates proposals to a region whose pessimistic predicted
// loss stays within a margin of the incumbent.
func NewSafeBOPolicy(s *Space, seed int64) Policy { return core.NewSafeBOPolicy(s, seed) }

// Tuning-as-a-service types (internal/server): the autotuned daemon
// multiplexes thousands of concurrent studies over HTTP+JSON with
// exactly-once observes (fsynced before the ack, deduped by trial ID),
// deterministic resume after kill -9, admission control with 429 +
// Retry-After, and graceful drain on SIGTERM.
type (
	// Server is the tuning daemon: an http.Handler hosting the JSON API,
	// created by NewServer and typically run via Serve.
	Server = server.Server
	// ServerOptions configures NewServer/Serve (store directory,
	// admission limits, timeouts, default optimizer, session sharding,
	// group-commit mode).
	ServerOptions = server.Options
	// Client is the typed HTTP client for the daemon's JSON API.
	Client = server.Client
	// StudySpec declares a study over the wire: optimizer name, seed, and
	// the configuration space as ParamSpecs.
	StudySpec = server.StudySpec
	// ParamSpec is one parameter of a wire-declared space.
	ParamSpec = server.ParamSpec
	// SuggestedTrial is one (trial ID, config) pair from Client.Suggest.
	SuggestedTrial = server.SuggestedTrial
	// ServiceObservation reports one evaluated trial to the daemon; acked
	// observations are durable and replay-safe.
	ServiceObservation = server.Observation
)

// NewServer opens (or creates) the study store under
// ServerOptions.StoreDir, recovers every persisted study, and returns the
// daemon ready to mount as an http.Handler. Close (or Drain) seals the
// store on the way out.
var NewServer = server.New

// NewServerClient returns a Client for an autotuned daemon's base URL.
var NewServerClient = server.NewClient

// Serve runs the tuning daemon on addr until ctx is cancelled — wire
// SIGTERM to that — then drains gracefully: stop admitting, finish
// in-flight requests, seal the study log, return nil. It is the
// programmatic equivalent of the autotuned command.
func Serve(ctx context.Context, addr string, opts ServerOptions) error {
	s, err := server.New(opts)
	if err != nil {
		return err
	}
	return s.ListenAndServe(ctx, addr, nil)
}

// Experiments lists the reproduction experiment ids: the tutorial's
// figures/claims (F1..F22) and the framework's own ablations (A1..A5).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one of the tutorial's figures/tables. Quick
// mode shrinks budgets for CI-scale runs.
func RunExperiment(id string, quick bool, seed int64) (ExperimentTable, error) {
	return experiments.Run(id, quick, seed)
}
