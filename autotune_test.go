package autotune_test

import (
	"math"
	"testing"

	"autotune"
)

func TestFacadeMinimize(t *testing.T) {
	sp := autotune.MustSpace(
		autotune.Float("x", -5, 5),
		autotune.Float("y", -5, 5),
	)
	f := func(c autotune.Config) float64 {
		dx := c.Float("x") - 1
		dy := c.Float("y") + 2
		return dx*dx + dy*dy
	}
	o, err := autotune.NewOptimizer("bo", sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg, val, err := autotune.Minimize(o, f, 30)
	if err != nil {
		t.Fatal(err)
	}
	if val > 0.5 {
		t.Fatalf("best = %v at %v", val, cfg)
	}
}

func TestFacadeBOSurrogateTiers(t *testing.T) {
	sp := autotune.MustSpace(
		autotune.Float("x", -5, 5),
		autotune.Float("y", -5, 5),
	)
	f := func(c autotune.Config) float64 {
		dx := c.Float("x") - 1
		dy := c.Float("y") + 2
		return dx*dx + dy*dy
	}
	pol, ok := autotune.ParseSurrogate("sparse")
	if !ok || pol != autotune.SurrogateSparse {
		t.Fatalf("ParseSurrogate(sparse) = %v, %v", pol, ok)
	}
	o := autotune.NewBO(sp, 1, autotune.BOOptions{
		OneHot: true, Surrogate: autotune.SurrogateSparse, SparseBudget: 16,
	})
	if _, _, err := autotune.Minimize(o, f, 25); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Tier != "sparse" {
		t.Fatalf("tier = %q, want sparse", st.Tier)
	}
}

func TestFacadeAllOptimizerNames(t *testing.T) {
	sp := autotune.MustSpace(autotune.Float("x", 0, 1))
	for _, name := range autotune.OptimizerNames() {
		o, err := autotune.NewOptimizer(name, sp, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := o.Suggest(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := autotune.NewOptimizer("nope", sp, 2); err == nil {
		t.Fatal("unknown optimizer should error")
	}
}

func TestFacadeTune(t *testing.T) {
	sp := autotune.MustSpace(autotune.Float("x", 0, 1))
	env := &autotune.FuncEnv{
		Sp: sp,
		F:  func(c autotune.Config) float64 { return math.Abs(c.Float("x") - 0.25) },
	}
	o, err := autotune.NewOptimizer("random", sp, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := autotune.Tune(o, env, autotune.TuneOptions{Budget: 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestValue > 0.05 {
		t.Fatalf("best = %v", rep.BestValue)
	}
}

func TestFacadeSpaceBuilders(t *testing.T) {
	sp, err := autotune.NewSpace(
		autotune.Float("f", 0, 1),
		autotune.Int("i", 1, 10),
		autotune.Categorical("c", "a", "b"),
		autotune.Bool("b"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dim() != 4 {
		t.Fatalf("dim = %d", sp.Dim())
	}
	if _, err := autotune.NewSpace(autotune.Float("bad", 2, 1)); err == nil {
		t.Fatal("invalid bounds should error")
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	ids := autotune.Experiments()
	if len(ids) != 27 {
		t.Fatalf("experiments = %d", len(ids))
	}
	tab, err := autotune.RunExperiment("F1", true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "F1" || len(tab.Rows) == 0 {
		t.Fatalf("table: %+v", tab)
	}
}

func TestFacadeOnlineAgent(t *testing.T) {
	sys := &toyOnline{sp: autotune.MustSpace(autotune.Float("x", 0, 1).WithDefault(0.9))}
	agent, err := autotune.NewAgent(sys, autotune.NewRandomWalkPolicy(sys.sp), autotune.Guardrails{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := agent.Step(); err != nil {
			t.Fatal(err)
		}
	}
	inc, loss := agent.Incumbent()
	if inc == nil || loss > 0.5 {
		t.Fatalf("incumbent %v loss %v", inc, loss)
	}
}

type toyOnline struct {
	sp  *autotune.Space
	cur autotune.Config
}

func (s *toyOnline) Space() *autotune.Space { return s.sp }

func (s *toyOnline) Apply(cfg autotune.Config) error {
	s.cur = cfg.Clone()
	return nil
}

func (s *toyOnline) Measure() (float64, []float64) {
	x := s.cur.Float("x")
	return (x - 0.2) * (x - 0.2), []float64{0.5}
}

func TestFacadePolicies(t *testing.T) {
	sp := autotune.MustSpace(autotune.Float("x", 0, 1))
	if _, err := autotune.NewDeltaPolicy(sp, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := autotune.NewBanditPolicy([]autotune.Config{{"x": 0.1}, {"x": 0.9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := autotune.NewBanditPolicy(nil); err == nil {
		t.Fatal("empty arms should error")
	}
	if _, err := autotune.NewActorCriticPolicy(sp, nil, 2, 1); err != nil {
		t.Fatal(err)
	}
	if autotune.NewSafeBOPolicy(sp, 1).Name() != "safe-bo" {
		t.Fatal("safe-bo facade")
	}
}
